// Tests for the cancellable job-queue verification engine: determinism
// across thread counts, cooperative cancellation, budgets, early exit on
// violation, and checkpoint/resume.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <sstream>

#include "closed_loop_fixtures.hpp"
#include "core/engine.hpp"
#include "core/report_io.hpp"
#include "obs/metrics.hpp"

namespace nncs {
namespace {

using testing_fixtures::braking_plant;
using testing_fixtures::threshold_controller;

const TaylorIntegrator kIntegrator;

/// Same braking setup the verifier tests use: always-coast vehicle, safety
/// decided by the sign of the closing speed v, mixed cells refine.
struct EngineSetup {
  std::unique_ptr<Dynamics> plant = braking_plant();
  std::unique_ptr<NeuralController> ctrl = threshold_controller(-1e9, -8.0);
  ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  BoxRegion error{{{0, Interval{-1e9, 0.0}}}};
  BoxRegion target{{{0, Interval{20.0, 1e9}}}};

  EngineConfig config() const {
    EngineConfig ec;
    ec.verify.reach.control_steps = 30;
    ec.verify.reach.integration_steps = 2;
    ec.verify.reach.gamma = 4;
    ec.verify.reach.integrator = &kIntegrator;
    ec.verify.max_refinement_depth = 2;
    ec.verify.split_dims = {1};
    ec.verify.threads = 2;
    return ec;
  }

  VerificationEngine engine() const { return VerificationEngine(system, error, target); }
};

/// Mixed cells (v straddles 0) so the run exercises refinement.
SymbolicSet mixed_cells(int n) {
  SymbolicSet cells;
  for (int i = 0; i < n; ++i) {
    cells.push_back({Box{Interval{4.0 + i, 5.0 + i}, Interval{-2.0, 2.0}}, 0});
  }
  return cells;
}

std::string canonical_csv(VerifyReport report) {
  strip_timing(report);
  std::ostringstream os;
  save_report(report, os);
  return os.str();
}

TEST(Engine, CompleteRunMatchesVerifier) {
  EngineSetup s;
  const auto cells = mixed_cells(3);
  const EngineResult result = s.engine().run(cells, s.config());
  EXPECT_EQ(result.stop_reason, EngineStopReason::kComplete);
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(result.checkpoint.frontier.empty());
  EXPECT_FALSE(result.violation.has_value());

  const auto report = Verifier(s.system, s.error, s.target).verify(cells, s.config().verify);
  EXPECT_EQ(canonical_csv(result.report), canonical_csv(report));
}

TEST(Engine, LeavesAreSortedDeterministically) {
  EngineSetup s;
  const EngineResult result = s.engine().run(mixed_cells(4), s.config());
  const auto& leaves = result.report.leaves;
  EXPECT_TRUE(std::is_sorted(leaves.begin(), leaves.end(), cell_outcome_less));
  // Strictly sorted: no two leaves share (root, depth, box, command).
  for (std::size_t i = 1; i < leaves.size(); ++i) {
    EXPECT_TRUE(cell_outcome_less(leaves[i - 1], leaves[i]));
  }
}

TEST(Engine, CanonicalReportIsByteIdenticalAcrossThreadCounts) {
  EngineSetup s;
  const auto cells = mixed_cells(6);
  EngineConfig one = s.config();
  one.verify.threads = 1;
  EngineConfig eight = s.config();
  eight.verify.threads = 8;
  const EngineResult a = s.engine().run(cells, one);
  const EngineResult b = s.engine().run(cells, eight);
  EXPECT_EQ(canonical_csv(a.report), canonical_csv(b.report));
  // Interior counters are deterministic sums too (only timing may differ).
  EXPECT_EQ(a.report.interior_stats.steps_executed, b.report.interior_stats.steps_executed);
  EXPECT_EQ(a.report.interior_stats.total_simulations,
            b.report.interior_stats.total_simulations);
}

TEST(Engine, DegenerateSplitDimStallsInsteadOfLoopingForever) {
  // A failing cell that is degenerate in the only split dimension used to be
  // re-queued with two children identical to itself, refining pointlessly to
  // max depth. It must instead become an undecided leaf at its current depth
  // and bump the engine.stalled_splits counter.
  EngineSetup s;
  SymbolicSet cells;
  cells.push_back({Box{Interval{4.0, 5.0}, Interval{2.0, 2.0}}, 0});
  EngineConfig config = s.config();
  config.verify.max_refinement_depth = 6;

  obs::set_enabled(true);
  const std::uint64_t before =
      obs::Registry::instance().snapshot().counter("engine.stalled_splits");
  const EngineResult result = s.engine().run(cells, config);
  const std::uint64_t after =
      obs::Registry::instance().snapshot().counter("engine.stalled_splits");
  obs::set_enabled(false);

  ASSERT_EQ(result.report.leaves.size(), 1u);
  EXPECT_EQ(result.report.leaves[0].depth, 0);
  EXPECT_NE(result.report.leaves[0].outcome, ReachOutcome::kProvedSafe);
  EXPECT_GE(after - before, 1u);
}

TEST(Engine, PartiallyDegenerateCellSplitsRemainingDims) {
  // Same degenerate-v cell, but with both dimensions listed: the engine
  // should split the one bisectable dimension (p) and still make progress.
  EngineSetup s;
  SymbolicSet cells;
  cells.push_back({Box{Interval{4.0, 5.0}, Interval{2.0, 2.0}}, 0});
  EngineConfig config = s.config();
  config.verify.split_dims = {0, 1};
  config.verify.max_refinement_depth = 1;
  const EngineResult result = s.engine().run(cells, config);
  ASSERT_EQ(result.report.leaves.size(), 2u);
  for (const CellOutcome& leaf : result.report.leaves) {
    EXPECT_EQ(leaf.depth, 1);
    // Only dimension 0 was split; the degenerate dimension is untouched.
    EXPECT_EQ(leaf.initial.box()[1], (Interval{2.0, 2.0}));
  }
}

TEST(Engine, StoppedControlCancelsReachAnalyze) {
  EngineSetup s;
  RunControl control;
  control.request_stop();
  const ReachConfig rc = s.config().verify.reach;
  const auto res = reach_analyze(s.system, mixed_cells(1), s.error, s.target, rc, &control);
  EXPECT_EQ(res.outcome, ReachOutcome::kCancelled);
  EXPECT_EQ(res.stats.steps_executed, 0);
  EXPECT_STREQ(to_string(res.outcome), "cancelled");
}

TEST(Engine, ExpiredDeadlineCancelsReachAnalyze) {
  EngineSetup s;
  RunControl control;
  control.set_deadline(std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(control.stopped());
  const ReachConfig rc = s.config().verify.reach;
  const auto res = reach_analyze(s.system, mixed_cells(1), s.error, s.target, rc, &control);
  EXPECT_EQ(res.outcome, ReachOutcome::kCancelled);
}

TEST(Engine, TimeBudgetCheckpointsAndResumeMatchesReference) {
  EngineSetup s;
  const auto cells = mixed_cells(4);
  const EngineResult reference = s.engine().run(cells, s.config());
  ASSERT_TRUE(reference.complete());

  // A budget far below one cell's analysis time: the run stops with work
  // left over (whatever subset did finish is merged on resume).
  EngineConfig budgeted = s.config();
  budgeted.time_budget_seconds = 1e-6;
  const EngineResult interrupted = s.engine().run(cells, budgeted);
  ASSERT_EQ(interrupted.stop_reason, EngineStopReason::kStopped);
  ASSERT_FALSE(interrupted.checkpoint.frontier.empty());
  EXPECT_EQ(interrupted.checkpoint.root_cells, cells.size());

  // Round-trip the checkpoint through its serialization, like the CLI does.
  std::stringstream buffer;
  save_checkpoint(interrupted.checkpoint, buffer);
  const EngineCheckpoint restored = load_checkpoint(buffer);

  const EngineResult resumed = s.engine().resume(cells, restored, s.config());
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(canonical_csv(resumed.report), canonical_csv(reference.report));
  EXPECT_DOUBLE_EQ(resumed.report.coverage_percent, reference.report.coverage_percent);
}

TEST(Engine, StopOnViolationExitsEarly) {
  EngineSetup s;
  // First cell certainly unsafe (v > 0), the rest safe; one worker so the
  // violation fires before anything else runs.
  SymbolicSet cells{{Box{Interval{5.0, 6.0}, Interval{1.0, 2.0}}, 0}};
  for (int i = 0; i < 3; ++i) {
    cells.push_back({Box{Interval{5.0 + i, 6.0 + i}, Interval{-2.0, -1.0}}, 0});
  }
  EngineConfig ec = s.config();
  ec.verify.threads = 1;
  ec.stop_on_violation = true;
  const EngineResult result = s.engine().run(cells, ec);
  EXPECT_EQ(result.stop_reason, EngineStopReason::kViolation);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->outcome, ReachOutcome::kErrorReachable);
  EXPECT_EQ(result.violation->root_index, 0u);
  // The offending cell is a terminal leaf even below max_refinement_depth.
  EXPECT_EQ(result.violation->depth, 0);
  // The untouched cells survive in the frontier for a later resume.
  EXPECT_FALSE(result.checkpoint.frontier.empty());

  // Resuming (without the early exit) finishes the safe remainder.
  const EngineResult resumed = s.engine().resume(cells, result.checkpoint, s.config());
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.report.leaves.size(), 4u);
  EXPECT_EQ(resumed.report.proved_leaves, 3u);
}

TEST(Engine, ProgressCallbackObservesRunAndCanStopIt) {
  EngineSetup s;
  SymbolicSet cells;
  for (int i = 0; i < 6; ++i) {
    cells.push_back({Box{Interval{5.0 + i, 6.0 + i}, Interval{-2.0, -1.0}}, 0});
  }
  RunControl control;
  EngineConfig ec = s.config();
  ec.verify.threads = 1;
  std::size_t calls = 0;
  ec.on_progress = [&](const EngineProgress& p) {
    ++calls;
    EXPECT_EQ(p.cells_done, p.cells_proved + p.cells_failed);
    if (p.cells_done >= 2) {
      control.request_stop();
    }
  };
  const EngineResult result = s.engine().run(cells, ec, &control);
  EXPECT_GE(calls, 2u);
  EXPECT_EQ(result.stop_reason, EngineStopReason::kStopped);
  EXPECT_GE(result.report.leaves.size(), 2u);
  EXPECT_FALSE(result.checkpoint.frontier.empty());
  EXPECT_EQ(result.report.leaves.size() + result.checkpoint.frontier.size(), cells.size());
}

TEST(Engine, ResumeValidatesCheckpoint) {
  EngineSetup s;
  const auto cells = mixed_cells(2);
  EngineCheckpoint wrong_partition;
  wrong_partition.root_cells = 99;
  EXPECT_THROW(s.engine().resume(cells, wrong_partition, s.config()), std::invalid_argument);

  EngineCheckpoint corrupt;
  corrupt.root_cells = cells.size();
  corrupt.frontier.push_back(VerifyJob{cells[0], 0, /*root_index=*/7});
  EXPECT_THROW(s.engine().resume(cells, corrupt, s.config()), std::invalid_argument);
}

TEST(Engine, RunControlStateMachine) {
  RunControl control;
  EXPECT_FALSE(control.stopped());
  EXPECT_FALSE(control.has_deadline());
  control.set_time_budget(3600.0);
  EXPECT_TRUE(control.has_deadline());
  EXPECT_FALSE(control.stopped());
  control.clear_deadline();
  EXPECT_FALSE(control.has_deadline());
  control.request_stop();
  EXPECT_TRUE(control.stopped());
}

TEST(Engine, RunControlSignalFlag) {
  static volatile std::sig_atomic_t flag = 0;
  flag = 0;
  RunControl control;
  control.bind_signal_flag(&flag);
  EXPECT_FALSE(control.stopped());
  flag = 1;
  EXPECT_TRUE(control.stopped());
}

}  // namespace
}  // namespace nncs
