// Tests for the sound argmin/argmax analysis (the Post# transformer).

#include <gtest/gtest.h>

#include "nn/argmin_analysis.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

TEST(Argmin, ConcreteFirstIndexTieBreak) {
  EXPECT_EQ(concrete_argmin(Vec{3.0, 1.0, 2.0}), 1u);
  EXPECT_EQ(concrete_argmin(Vec{1.0, 1.0, 2.0}), 0u);
  EXPECT_EQ(concrete_argmax(Vec{3.0, 5.0, 5.0}), 1u);
  EXPECT_THROW(concrete_argmin(Vec{}), std::invalid_argument);
  EXPECT_THROW(concrete_argmax(Vec{}), std::invalid_argument);
}

TEST(Argmin, DisjointIntervalsGiveUniqueWinner) {
  const Box out{Interval{0.0, 1.0}, Interval{2.0, 3.0}, Interval{4.0, 5.0}};
  const auto c = possible_argmin(out);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 0u);
}

TEST(Argmin, OverlappingIntervalsKeepAllCandidates) {
  const Box out{Interval{0.0, 3.0}, Interval{1.0, 2.0}, Interval{2.5, 4.0}};
  const auto c = possible_argmin(out);
  // min_hi = 2.0; candidates: lo <= 2.0 -> indices 0 and 1.
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 0u);
  EXPECT_EQ(c[1], 1u);
}

TEST(Argmin, TouchingBoundsStayIncluded) {
  // lo of one equals min hi: conservative inclusion.
  const Box out{Interval{0.0, 1.0}, Interval{1.0, 2.0}};
  const auto c = possible_argmin(out);
  EXPECT_EQ(c.size(), 2u);
}

TEST(Argmax, MirrorsArgmin) {
  const Box out{Interval{0.0, 1.0}, Interval{2.0, 3.0}, Interval{2.5, 4.0}};
  const auto c = possible_argmax(out);
  // max_lo = 2.5; candidates: hi >= 2.5 -> indices 1 and 2.
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 1u);
  EXPECT_EQ(c[1], 2u);
}

TEST(Argmin, EmptyBoxThrows) {
  EXPECT_THROW(possible_argmin(Box{}), std::invalid_argument);
  EXPECT_THROW(possible_argmax(Box{}), std::invalid_argument);
}

// Soundness property: the concrete argmin of any sampled output vector must
// appear in the candidates computed from a box containing it.
TEST(ArgminProperty, ConcreteSelectionAlwaysInCandidates) {
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t p = static_cast<std::size_t>(rng.uniform_int(2, 6));
    std::vector<Interval> dims;
    for (std::size_t i = 0; i < p; ++i) {
      const double lo = rng.uniform(-5.0, 5.0);
      dims.emplace_back(lo, lo + rng.uniform(0.0, 3.0));
    }
    const Box out{dims};
    const auto cmin = possible_argmin(out);
    const auto cmax = possible_argmax(out);
    for (int s = 0; s < 20; ++s) {
      Vec y(p);
      for (std::size_t i = 0; i < p; ++i) {
        y[i] = rng.uniform(out[i].lo(), out[i].hi());
      }
      const std::size_t kmin = concrete_argmin(y);
      const std::size_t kmax = concrete_argmax(y);
      ASSERT_NE(std::find(cmin.begin(), cmin.end(), kmin), cmin.end());
      ASSERT_NE(std::find(cmax.begin(), cmax.end(), kmax), cmax.end());
    }
  }
}

// Symbolic refinement: with shared dependencies the symbolic rule must
// exclude candidates the box rule cannot, and must stay sound.
TEST(ArgminSymbolic, ExcludesDominatedCandidate) {
  // y0 = h(x), y1 = h(x) + 1 where h = relu(x): y1 can never be minimal.
  // The input box keeps the ReLU stably active so the affine forms cancel
  // exactly in the difference (an unstable ReLU's relaxation gap would
  // legitimately prevent the exclusion).
  Network net = make_zero_network({1, 1, 2});
  net.layer(0).weights(0, 0) = 1.0;
  net.layer(1).weights(0, 0) = 1.0;
  net.layer(1).weights(1, 0) = 1.0;
  net.layer(1).biases[1] = 1.0;
  const auto bounds = symbolic_propagate(net, Box{Interval{0.5, 2.0}});
  const auto box_candidates = possible_argmin(bounds.output_box);
  const auto sym_candidates = possible_argmin(bounds);
  ASSERT_EQ(sym_candidates.size(), 1u);
  EXPECT_EQ(sym_candidates[0], 0u);
  // The box rule cannot see the cancellation (ranges overlap).
  EXPECT_GE(box_candidates.size(), sym_candidates.size());
}

TEST(ArgmaxSymbolic, ExcludesDominatedCandidate) {
  Network net = make_zero_network({1, 1, 2});
  net.layer(0).weights(0, 0) = 1.0;
  net.layer(1).weights(0, 0) = 1.0;
  net.layer(1).weights(1, 0) = 1.0;
  net.layer(1).biases[1] = 1.0;  // y1 = y0 + 1 always wins argmax
  const auto bounds = symbolic_propagate(net, Box{Interval{0.5, 2.0}});
  const auto c = possible_argmax(bounds);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 1u);
}

TEST(ArgminSymbolicProperty, SoundOnRandomNetworks) {
  Rng rng(22);
  for (int trial = 0; trial < 30; ++trial) {
    Network net = make_zero_network({2, 8, 4});
    for (std::size_t li = 0; li < net.num_layers(); ++li) {
      for (double& w : net.layer(li).weights.data()) {
        w = rng.uniform(-1.0, 1.0);
      }
      for (double& b : net.layer(li).biases) {
        b = rng.uniform(-0.5, 0.5);
      }
    }
    const Box input(2, Interval{-0.5, 0.5});
    const auto bounds = symbolic_propagate(net, input);
    const auto candidates = possible_argmin(bounds);
    for (int s = 0; s < 50; ++s) {
      const Vec x{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)};
      const std::size_t k = concrete_argmin(net.eval(x));
      ASSERT_NE(std::find(candidates.begin(), candidates.end(), k), candidates.end())
          << "selected " << k << " missing from symbolic candidates";
    }
  }
}

}  // namespace
}  // namespace nncs
