// Tests for the scenario layer (src/scenario/): registry semantics,
// deterministic partitions, fingerprint/checkpoint stamping, and one cheap
// end-to-end verification per registered scenario (the SmokeSpec contract —
// adding a scenario means declaring what "working" looks like here).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "acasxu/scenario.hpp"
#include "core/engine.hpp"
#include "core/report_io.hpp"
#include "core/verifier.hpp"
#include "obs/provenance.hpp"
#include "scenario/scenario.hpp"
#include "scenario/unicycle.hpp"

namespace nncs::scenario {
namespace {

// ---------------------------------------------------------------- registry

TEST(ScenarioRegistry, GlobalHasBuiltins) {
  const Registry& registry = Registry::global();
  EXPECT_GE(registry.size(), 4u);
  EXPECT_NE(registry.find("acasxu"), nullptr);
  EXPECT_NE(registry.find("cruise_control"), nullptr);
  EXPECT_NE(registry.find("pendulum"), nullptr);
  EXPECT_NE(registry.find("unicycle"), nullptr);
}

TEST(ScenarioRegistry, AllIsSortedByName) {
  const auto all = Registry::global().all();
  ASSERT_GE(all.size(), 3u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name(), all[i]->name());
  }
}

TEST(ScenarioRegistry, LookupByName) {
  const Registry& registry = Registry::global();
  EXPECT_EQ(registry.at("acasxu").name(), "acasxu");
  EXPECT_EQ(registry.find("acasxu")->name(), "acasxu");
  EXPECT_EQ(registry.find("no_such_scenario"), nullptr);
}

TEST(ScenarioRegistry, UnknownNameThrowsListingRegistered) {
  try {
    (void)Registry::global().at("no_such_scenario");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_scenario"), std::string::npos);
    // The error lists the registered names so the CLI message is actionable.
    EXPECT_NE(what.find("acasxu"), std::string::npos);
    EXPECT_NE(what.find("unicycle"), std::string::npos);
  }
}

TEST(ScenarioRegistry, DuplicateAddThrows) {
  Registry registry;
  registry.add(make_unicycle_scenario());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_THROW(registry.add(make_unicycle_scenario()), std::invalid_argument);
}

TEST(ScenarioRegistry, ForEachVisitsAllSorted) {
  std::vector<std::string> names;
  Registry::global().for_each([&](const Scenario& s) { names.push_back(s.name()); });
  EXPECT_EQ(names.size(), Registry::global().size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

// ------------------------------------------------------- metadata contract

TEST(ScenarioContract, MetadataIsWellFormed) {
  Registry::global().for_each([](const Scenario& s) {
    SCOPED_TRACE(s.name());
    EXPECT_FALSE(s.name().empty());
    EXPECT_EQ(s.name().find(','), std::string::npos);
    EXPECT_EQ(s.name().find(' '), std::string::npos);
    EXPECT_FALSE(s.description().empty());
    EXPECT_FALSE(s.version().empty());
    for (const auto& [key, value] : s.parameters()) {
      EXPECT_FALSE(key.empty());
      // Comma-free so parameters embed in fingerprints and CSV headers.
      EXPECT_EQ(key.find(','), std::string::npos) << key;
      EXPECT_EQ(value.find(','), std::string::npos) << key << "=" << value;
      EXPECT_EQ(value.find('\n'), std::string::npos) << key;
    }
    const Partition def = s.default_partition();
    EXPECT_GT(def.axis0, 0u);
    EXPECT_GT(def.axis1, 0u);
  });
}

TEST(ScenarioContract, ResolveFillsZeroAxesFromDefaults) {
  const Scenario& scen = Registry::global().at("unicycle");
  const Partition def = scen.default_partition();
  const Partition all_default = resolve(scen, Partition{});
  EXPECT_EQ(all_default.axis0, def.axis0);
  EXPECT_EQ(all_default.axis1, def.axis1);
  const Partition partial = resolve(scen, Partition{3, 0});
  EXPECT_EQ(partial.axis0, 3u);
  EXPECT_EQ(partial.axis1, def.axis1);
}

// ---------------------------------------------------------------- partitions

TEST(ScenarioCells, DeterministicAcrossCalls) {
  Registry::global().for_each([](const Scenario& s) {
    SCOPED_TRACE(s.name());
    const auto a = s.make_cells(Partition{4, 3});
    const auto b = s.make_cells(Partition{4, 3});
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), 4u * 3u);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].state.box(), b[i].state.box());
      EXPECT_EQ(a[i].state.command, b[i].state.command);
      EXPECT_EQ(a[i].bin_lo, b[i].bin_lo);
      EXPECT_EQ(a[i].bin_hi, b[i].bin_hi);
      EXPECT_LT(a[i].bin_lo, a[i].bin_hi);
    }
  });
}

TEST(ScenarioCells, AcasxuMatchesLegacyGenerator) {
  const auto cells = Registry::global().at("acasxu").make_cells(Partition{8, 4});
  acasxu::ScenarioConfig config;
  config.num_arcs = 8;
  config.num_headings = 4;
  const auto legacy = acasxu::make_initial_cells(config);
  ASSERT_EQ(cells.size(), legacy.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].state.box(), legacy[i].state.box());
    EXPECT_EQ(cells[i].state.command, legacy[i].state.command);
    EXPECT_EQ(cells[i].bin_lo, legacy[i].bearing_lo);
    EXPECT_EQ(cells[i].bin_hi, legacy[i].bearing_hi);
  }
}

TEST(ScenarioCells, ToSymbolicSetStripsBinMetadata) {
  const auto cells = Registry::global().at("cruise_control").make_cells(Partition{5, 2});
  const SymbolicSet set = to_symbolic_set(cells);
  ASSERT_EQ(set.size(), cells.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set[i].box(), cells[i].state.box());
    EXPECT_EQ(set[i].command, cells[i].state.command);
  }
}

// -------------------------------------------------------------- fingerprint

TEST(ScenarioFingerprint, DeterministicAndCsvSafe) {
  Registry::global().for_each([](const Scenario& s) {
    SCOPED_TRACE(s.name());
    const std::string fp = fingerprint(s, Partition{});
    EXPECT_EQ(fp, fingerprint(s, Partition{}));
    EXPECT_NE(fp.find(s.name()), std::string::npos);
    EXPECT_EQ(fp.find(','), std::string::npos);
    EXPECT_EQ(fp.find('\n'), std::string::npos);
  });
}

TEST(ScenarioFingerprint, ChangesWithPartition) {
  const Scenario& scen = Registry::global().at("acasxu");
  EXPECT_NE(fingerprint(scen, Partition{8, 4}), fingerprint(scen, Partition{16, 4}));
  EXPECT_NE(fingerprint(scen, Partition{8, 4}), fingerprint(scen, Partition{8, 8}));
  // Zero axes resolve to the defaults, so {} and the explicit default agree.
  EXPECT_EQ(fingerprint(scen, Partition{}), fingerprint(scen, scen.default_partition()));
}

// ------------------------------------------------------ checkpoint stamping

TEST(ScenarioCheckpoint, StampedRoundTripIsV2) {
  EngineCheckpoint cp;
  cp.root_cells = 12;
  cp.scenario = "unicycle";
  cp.fingerprint = fingerprint(Registry::global().at("unicycle"), Partition{});
  std::stringstream buffer;
  save_checkpoint(cp, buffer);
  EXPECT_EQ(buffer.str().rfind("nncs-checkpoint v2,", 0), 0u);
  const EngineCheckpoint loaded = load_checkpoint(buffer);
  EXPECT_EQ(loaded.root_cells, 12u);
  EXPECT_EQ(loaded.scenario, cp.scenario);
  EXPECT_EQ(loaded.fingerprint, cp.fingerprint);
}

TEST(ScenarioCheckpoint, UnstampedRoundTripStaysV1) {
  EngineCheckpoint cp;
  cp.root_cells = 3;
  std::stringstream buffer;
  save_checkpoint(cp, buffer);
  EXPECT_EQ(buffer.str().rfind("nncs-checkpoint v1,", 0), 0u);
  const EngineCheckpoint loaded = load_checkpoint(buffer);
  EXPECT_TRUE(loaded.scenario.empty());
  EXPECT_TRUE(loaded.fingerprint.empty());
}

// ---------------------------------------------------------------- telemetry

TEST(ScenarioProvenance, SetScenarioFlowsIntoProvenance) {
  obs::set_scenario("test_scenario_name");
  EXPECT_EQ(obs::collect_provenance().scenario, "test_scenario_name");
  obs::set_scenario("");
  EXPECT_EQ(obs::collect_provenance().scenario, "");
}

// -------------------------------------------------------- end-to-end smoke

/// Run the scenario's own SmokeSpec through the plain Verifier, reading the
/// trained networks from the repo's checked-in caches (tests run from the
/// build tree, where the scenarios' relative default paths don't resolve).
VerifyReport run_smoke(const Scenario& scen,
                       std::optional<LoopDomain> domain_override = std::nullopt) {
  SystemConfig sys_config;
  sys_config.nets_dir =
      std::filesystem::path(NNCS_SOURCE_DIR) / (scen.name() + "_nets_cache");
  const System system = scen.make_system(sys_config);
  const auto error = scen.make_error_region();
  const auto target = scen.make_target_region();
  const SmokeSpec spec = scen.smoke();
  const auto cells = scen.make_cells(spec.partition);

  const TaylorIntegrator integrator(TaylorIntegrator::Config{scen.default_taylor_order(), {}});
  VerifyConfig config = scen.default_config();
  config.reach.integrator = &integrator;
  if (spec.control_steps > 0) {
    config.reach.control_steps = spec.control_steps;
  }
  if (spec.max_refinement_depth >= 0) {
    config.max_refinement_depth = spec.max_refinement_depth;
  }
  if (domain_override) {
    config.reach.domain = *domain_override;
  }
  config.threads = 4;

  const Verifier verifier(system.loop, *error, *target);
  return verifier.verify(to_symbolic_set(cells), config);
}

void expect_smoke_holds(const Scenario& scen) {
  const SmokeSpec spec = scen.smoke();
  const VerifyReport report = run_smoke(scen);
  ASSERT_FALSE(report.leaves.empty());
  std::size_t proved = 0;
  std::size_t errors = 0;
  std::size_t enclosure_failures = 0;
  for (const auto& leaf : report.leaves) {
    proved += leaf.outcome == ReachOutcome::kProvedSafe ? 1 : 0;
    errors += leaf.outcome == ReachOutcome::kErrorReachable ? 1 : 0;
    enclosure_failures += leaf.outcome == ReachOutcome::kEnclosureFailure ? 1 : 0;
  }
  switch (spec.expected) {
    case SmokeExpectation::kAllProved:
      EXPECT_EQ(proved, report.leaves.size());
      break;
    case SmokeExpectation::kAllSafe:
      EXPECT_EQ(errors, 0u);
      EXPECT_EQ(enclosure_failures, 0u);
      break;
    case SmokeExpectation::kSomeProved:
      EXPECT_GT(proved, 0u);
      EXPECT_EQ(enclosure_failures, 0u);
      break;
  }
}

TEST(ScenarioSmoke, Acasxu) { expect_smoke_holds(Registry::global().at("acasxu")); }

TEST(ScenarioSmoke, CruiseControl) {
  expect_smoke_holds(Registry::global().at("cruise_control"));
}

TEST(ScenarioSmoke, Pendulum) { expect_smoke_holds(Registry::global().at("pendulum")); }

// The pendulum exists to showcase the zonotope loop domain: the smoke spec
// above expects kAllProved under the default (zonotope) domain, while under
// the very same partition, depth, and gamma budget, the box domain wraps the
// rotating flow at every controller hand-off — it can still prove the inner
// cells (small boxes wrap little), but the outer band stays error-reachable
// at any refinement depth. If box ever fully verifies, the scenario has lost
// its discriminating power; if it reports no errors, the domains are likely
// not being threaded through the loop.
TEST(ScenarioSmoke, PendulumBoxDomainCannotVerify) {
  const Scenario& scen = Registry::global().at("pendulum");
  ASSERT_EQ(scen.default_config().reach.domain, LoopDomain::kZonotope);
  const VerifyReport report = run_smoke(scen, LoopDomain::kBox);
  ASSERT_FALSE(report.leaves.empty());
  std::size_t proved = 0;
  std::size_t errors = 0;
  for (const auto& leaf : report.leaves) {
    proved += leaf.outcome == ReachOutcome::kProvedSafe ? 1 : 0;
    errors += leaf.outcome == ReachOutcome::kErrorReachable ? 1 : 0;
  }
  EXPECT_LT(proved, report.leaves.size());
  EXPECT_GT(errors, 0u);
}

TEST(ScenarioSmoke, Unicycle) { expect_smoke_holds(Registry::global().at("unicycle")); }

}  // namespace
}  // namespace nncs::scenario
