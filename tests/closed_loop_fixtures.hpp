#pragma once

// Shared closed-loop fixtures for the core tests: tiny plants with
// hand-built (exact, not trained) controller networks so every behaviour is
// predictable.

#include <memory>

#include "core/reachability.hpp"

namespace nncs::testing_fixtures {

/// Plant: p' = -v, v' = u  (distance to an obstacle and closing speed).
struct BrakingField {
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = -s[1] + 0.0 * s[0];
    out[1] = u[0] + 0.0 * s[1];
  }
};

inline std::unique_ptr<Dynamics> braking_plant() {
  return make_dynamics(2, 1, BrakingField{});
}

/// Harmonic oscillator with angular rate omega: p' = omega*q, q' = -omega*p.
struct OscField {
  double omega;
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = Interval{omega} * s[1] + 0.0 * u[0];
    out[1] = -(Interval{omega} * s[0]) + 0.0 * u[0];
  }
  void operator()(std::span<const double> s, std::span<const double> u,
                  std::span<double> out) const {
    out[0] = omega * s[1] + 0.0 * u[0];
    out[1] = -omega * s[0];
  }
};

inline std::unique_ptr<Dynamics> oscillator_plant(double omega) {
  return make_dynamics(2, 1, OscField{omega});
}

/// Controller with commands {COAST = 0 (u=0), BRAKE = 1 (u=brake_accel)}
/// implementing the exact rule "brake iff p < threshold" via a single
/// affine network y = (threshold - p, 0): argmin selects BRAKE exactly when
/// threshold - p > 0. A threshold of -infinity yields an always-coast
/// controller; +infinity always brakes.
inline std::unique_ptr<NeuralController> threshold_controller(double threshold,
                                                              double brake_accel,
                                                              NnDomain domain =
                                                                  NnDomain::kSymbolic) {
  Network net = make_zero_network({2, 2});
  net.layer(0).weights(0, 0) = -1.0;  // y0 = threshold - p
  net.layer(0).biases[0] = threshold;
  // y1 = 0 always.
  std::vector<Network> nets;
  nets.push_back(std::move(net));
  return std::make_unique<NeuralController>(
      CommandSet({Vec{0.0}, Vec{brake_accel}}), std::move(nets),
      std::vector<std::size_t>{0, 0}, std::make_unique<IdentityPre>(2),
      std::make_unique<ArgminPost>(), domain);
}

}  // namespace nncs::testing_fixtures
