// Tests for the ReLU network representation and concrete forward pass,
// including the paper's Fig 4 worked example.

#include <gtest/gtest.h>

#include "nn/network.hpp"

namespace nncs {
namespace {

/// The tiny network of paper Fig 4: N = (3, {2, 2, 1}, W, B).
Network fig4_network() {
  Layer hidden{Matrix(2, 2), Vec{5.0, 6.0}};
  hidden.weights(0, 0) = -1.0;
  hidden.weights(0, 1) = 4.0;
  hidden.weights(1, 0) = 3.0;
  hidden.weights(1, 1) = -8.0;
  Layer output{Matrix(1, 2), Vec{2.0}};
  output.weights(0, 0) = -0.5;
  output.weights(0, 1) = 1.0;
  return Network{{hidden, output}};
}

TEST(Network, Fig4WorkedExample) {
  const Network net = fig4_network();
  const Vec y = net.eval(Vec{1.0, 2.0});
  ASSERT_EQ(y.size(), 1u);
  // Paper: hidden = (sigma(12), sigma(-11)) = (12, 0); output = -4.
  EXPECT_DOUBLE_EQ(y[0], -4.0);
}

TEST(Network, Fig4LayerSizes) {
  const Network net = fig4_network();
  EXPECT_EQ(net.input_dim(), 2u);
  EXPECT_EQ(net.output_dim(), 1u);
  EXPECT_EQ(net.num_layers(), 2u);
  EXPECT_EQ(net.layer_sizes(), (std::vector<std::size_t>{2, 2, 1}));
  EXPECT_EQ(net.num_parameters(), 4u + 2u + 2u + 1u);
}

TEST(Network, OutputLayerIsAffineNotRectified) {
  // Single affine layer producing a negative value: must not be clamped.
  Layer only{Matrix(1, 1), Vec{-3.0}};
  only.weights(0, 0) = 1.0;
  const Network net{{only}};
  EXPECT_DOUBLE_EQ(net.eval(Vec{1.0})[0], -2.0);
}

TEST(Network, HiddenLayerIsRectified) {
  Layer hidden{Matrix(1, 1), Vec{0.0}};
  hidden.weights(0, 0) = 1.0;
  Layer output{Matrix(1, 1), Vec{0.0}};
  output.weights(0, 0) = 1.0;
  const Network net{{hidden, output}};
  EXPECT_DOUBLE_EQ(net.eval(Vec{-5.0})[0], 0.0);  // relu kills the negative
  EXPECT_DOUBLE_EQ(net.eval(Vec{5.0})[0], 5.0);
}

TEST(Network, ValidationRejectsBadShapes) {
  // bias size mismatch
  EXPECT_THROW(Network({Layer{Matrix(2, 2), Vec{1.0}}}), std::invalid_argument);
  // chained dimension mismatch
  EXPECT_THROW(Network({Layer{Matrix(2, 2), Vec(2, 0.0)}, Layer{Matrix(1, 3), Vec(1, 0.0)}}),
               std::invalid_argument);
  // empty network
  EXPECT_THROW(Network(std::vector<Layer>{}), std::invalid_argument);
}

TEST(Network, EvalRejectsWrongInputDim) {
  const Network net = fig4_network();
  EXPECT_THROW(net.eval(Vec{1.0}), std::invalid_argument);
  EXPECT_THROW(net.eval_trace(Vec{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Network, TraceRecordsAllActivations) {
  const Network net = fig4_network();
  const auto trace = net.eval_trace(Vec{1.0, 2.0});
  ASSERT_EQ(trace.activations.size(), 3u);
  ASSERT_EQ(trace.preactivations.size(), 2u);
  EXPECT_EQ(trace.activations[0], (Vec{1.0, 2.0}));
  EXPECT_EQ(trace.preactivations[0], (Vec{12.0, -7.0}));
  EXPECT_EQ(trace.activations[1], (Vec{12.0, 0.0}));
  EXPECT_EQ(trace.activations[2], (Vec{-4.0}));
}

TEST(Network, MakeZeroNetwork) {
  const Network net = make_zero_network({3, 5, 2});
  EXPECT_EQ(net.input_dim(), 3u);
  EXPECT_EQ(net.output_dim(), 2u);
  EXPECT_EQ(net.eval(Vec{1.0, 2.0, 3.0}), (Vec{0.0, 0.0}));
  EXPECT_THROW(make_zero_network({3}), std::invalid_argument);
}

TEST(Network, MutableLayerAccess) {
  Network net = make_zero_network({1, 1});
  net.layer(0).weights(0, 0) = 2.0;
  net.layer(0).biases[0] = 1.0;
  EXPECT_DOUBLE_EQ(net.eval(Vec{3.0})[0], 7.0);
}

}  // namespace
}  // namespace nncs
