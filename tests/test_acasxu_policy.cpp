// Tests for the ground-truth advisory policy (the lookup-table substitute)
// and the ACAS Xu controller assembly.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "acasxu/controller.hpp"
#include "acasxu/dynamics.hpp"
#include "acasxu/policy.hpp"
#include "acasxu/training_pipeline.hpp"
#include "nn/argmin_analysis.hpp"
#include "util/rng.hpp"

namespace nncs::acasxu {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Policy, TurnRatesMatchPaperCommandSet) {
  EXPECT_DOUBLE_EQ(turn_rate(kCoc), 0.0);
  EXPECT_NEAR(turn_rate(kWL), 1.5 * kPi / 180.0, 1e-12);
  EXPECT_NEAR(turn_rate(kWR), -1.5 * kPi / 180.0, 1e-12);
  EXPECT_NEAR(turn_rate(kSL), 3.0 * kPi / 180.0, 1e-12);
  EXPECT_NEAR(turn_rate(kSR), -3.0 * kPi / 180.0, 1e-12);
  EXPECT_THROW(turn_rate(5), std::out_of_range);
}

TEST(Policy, AdvisoryNames) {
  EXPECT_STREQ(advisory_name(kCoc), "COC");
  EXPECT_STREQ(advisory_name(kSR), "SR");
  EXPECT_THROW(advisory_name(9), std::out_of_range);
}

TEST(Policy, ClearEncounterPrefersCoc) {
  // Intruder far away moving away: no alert needed.
  const Vec state{0.0, 8000.0, 0.2, 700.0, 600.0};  // nearly same heading
  EXPECT_EQ(best_advisory(state, kCoc), kCoc);
}

TEST(Policy, HeadOnCollisionCourseAlerts) {
  // Dead ahead, head-on at 4000 ft: without a maneuver the predicted
  // separation collapses; some turn must beat COC.
  const Vec state{0.0, 4000.0, kPi, 700.0, 600.0};
  const Vec scores = advisory_scores(state, kCoc);
  const std::size_t best = best_advisory(state, kCoc);
  EXPECT_NE(best, kCoc);
  EXPECT_GT(scores[kCoc], scores[best]);
}

TEST(Policy, SymmetricEncountersGiveMirroredAdvisories) {
  // Mirror the geometry (x -> -x, psi -> -psi): left/right advisories swap.
  const Vec left{-1500.0, 3000.0, -kPi / 2.0, 700.0, 600.0};
  const Vec right{1500.0, 3000.0, kPi / 2.0, 700.0, 600.0};
  const Vec sl = advisory_scores(left, kCoc);
  const Vec sr = advisory_scores(right, kCoc);
  EXPECT_NEAR(sl[kCoc], sr[kCoc], 1e-9);
  EXPECT_NEAR(sl[kWL], sr[kWR], 1e-9);
  EXPECT_NEAR(sl[kSL], sr[kSR], 1e-9);
}

TEST(Policy, ReversalPenaltyDiscouragesFlipFlops) {
  // Same geometry, different previous advisory: a previous WL makes WR more
  // expensive by exactly the reversal cost (all else equal).
  const PolicyConfig config;
  const Vec state{0.0, 7000.0, kPi, 700.0, 600.0};
  const Vec after_wl = advisory_scores(state, kWL, config);
  const Vec after_wr = advisory_scores(state, kWR, config);
  EXPECT_NEAR(after_wl[kWR] - after_wr[kWR],
              config.reversal_cost + config.switch_cost, 1e-9);
}

TEST(Policy, PredictedCollisionScoresAboveCleanPass) {
  const PolicyConfig config;
  // Imminent head-on collision vs distant crossing.
  const Vec imminent{0.0, 1200.0, kPi, 700.0, 600.0};
  const Vec clear{0.0, 7500.0, 0.0, 700.0, 600.0};
  EXPECT_GT(advisory_scores(imminent, kCoc)[kCoc], config.collision_penalty);
  EXPECT_LT(advisory_scores(clear, kCoc)[kCoc], 1.0);
}

TEST(Policy, ValidatesInputs) {
  EXPECT_THROW(advisory_scores(Vec{0.0, 1.0}, kCoc), std::invalid_argument);
  EXPECT_THROW(advisory_scores(Vec{0.0, 1.0, 0.0, 700.0, 600.0}, 7), std::out_of_range);
}

TEST(AcasController, CommandSetMatchesPolicy) {
  const CommandSet u = make_command_set();
  ASSERT_EQ(u.size(), kNumAdvisories);
  for (std::size_t a = 0; a < kNumAdvisories; ++a) {
    EXPECT_DOUBLE_EQ(u[a][0], turn_rate(a));
  }
}

TEST(AcasController, PreComputesNormalizedPolarFeatures) {
  const AcasPre pre;
  const Normalization norm;
  const Vec state{0.0, 8000.0, 1.0, 700.0, 600.0};
  const Vec x = pre.eval(state);
  ASSERT_EQ(x.size(), 5u);
  EXPECT_NEAR(x[0], (8000.0 - norm.rho_mean) / norm.rho_range, 1e-9);
  EXPECT_NEAR(x[1], 0.0, 1e-9);  // dead ahead
  EXPECT_NEAR(x[2], 1.0 / norm.angle_range, 1e-9);
}

TEST(AcasController, PreAbstractContainsConcrete) {
  const AcasPre pre;
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const double x_lo = rng.uniform(-6000.0, 5500.0);
    const double y_lo = rng.uniform(-6000.0, 5500.0);
    const double p_lo = rng.uniform(-3.0, 2.8);
    const Box box{Interval{x_lo, x_lo + 500.0}, Interval{y_lo, y_lo + 500.0},
                  Interval{p_lo, p_lo + 0.2}, Interval{700.0}, Interval{600.0}};
    const Box abstract = pre.eval_abstract(box);
    for (int s = 0; s < 10; ++s) {
      const Vec state{rng.uniform(box[0].lo(), box[0].hi()),
                      rng.uniform(box[1].lo(), box[1].hi()),
                      rng.uniform(box[2].lo(), box[2].hi()), 700.0, 600.0};
      const Vec features = pre.eval(state);
      for (std::size_t j = 0; j < features.size(); ++j) {
        ASSERT_TRUE(abstract[j].contains(features[j]))
            << "feature " << j << " escaped Pre#";
      }
    }
  }
}

TEST(AcasController, MakeControllerValidatesNetworks) {
  EXPECT_THROW(make_controller({}), std::invalid_argument);
  std::vector<Network> wrong_shape(kNumAdvisories, make_zero_network({4, 5}));
  EXPECT_THROW(make_controller(std::move(wrong_shape)), std::invalid_argument);
}

TEST(AcasController, ControllerTracksPolicyOnTinyTraining) {
  // Train a deliberately tiny controller and check it *nearly* matches the
  // ground-truth policy (sanity of the pipeline: dataset generation,
  // training, Pre wiring). Exact argmin agreement is too brittle a metric —
  // the policy often has near-tied advisories (e.g. WL vs SL) where a small
  // regression error flips the argmin harmlessly — so we measure the
  // *regret*: the policy-score gap between the network's choice and the
  // optimal advisory.
  TrainingConfig config;
  config.trainer.hidden = {24, 24};
  config.trainer.epochs = 40;
  config.samples_per_network = 12000;
  const auto networks = train_networks(config);
  const auto controller = make_controller(networks);

  Rng rng(29);
  int low_regret = 0;
  int total = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const double rho0 = rng.uniform(1000.0, 8000.0);
    const double theta0 = rng.uniform(-kPi, kPi);
    const double psi0 = rng.uniform(-3.0, 3.0);
    const Vec state{-rho0 * std::sin(theta0), rho0 * std::cos(theta0), psi0, 700.0, 600.0};
    const std::size_t prev = static_cast<std::size_t>(rng.uniform_int(0, 4));
    const Vec scores = advisory_scores(state, prev, config.policy);
    const std::size_t chosen = controller->step(state, prev);
    const double regret = scores[chosen] - scores[concrete_argmin(scores)];
    if (regret <= 1.0) {
      ++low_regret;
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(low_regret) / total, 0.9)
      << "trained controller should track its teacher with low regret";
}

TEST(AcasTraining, ConfigStampDetectsChanges) {
  TrainingConfig a;
  TrainingConfig b;
  EXPECT_EQ(config_stamp(a), config_stamp(b));
  b.samples_per_network += 1;
  EXPECT_NE(config_stamp(a), config_stamp(b));
  b = a;
  b.policy.alert_cost += 0.1;
  EXPECT_NE(config_stamp(a), config_stamp(b));
  b = a;
  b.trainer.hidden.push_back(8);
  EXPECT_NE(config_stamp(a), config_stamp(b));
}

TEST(AcasTraining, EnsureNetworksUsesCache) {
  const auto dir = std::filesystem::temp_directory_path() / "nncs_acas_cache_test";
  std::filesystem::remove_all(dir);
  TrainingConfig config;
  config.trainer.hidden = {8};
  config.trainer.epochs = 2;
  config.samples_per_network = 300;
  const auto first = ensure_networks(dir, config);
  ASSERT_EQ(first.size(), kNumAdvisories);
  // Second call must load identical weights from the cache.
  const auto second = ensure_networks(dir, config);
  for (std::size_t i = 0; i < kNumAdvisories; ++i) {
    EXPECT_EQ(first[i].layers()[0].weights, second[i].layers()[0].weights);
  }
  // A changed config invalidates the cache (different hidden size).
  TrainingConfig other = config;
  other.trainer.hidden = {6};
  const auto third = ensure_networks(dir, other);
  EXPECT_EQ(third[0].layer_sizes()[1], 6u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nncs::acasxu
