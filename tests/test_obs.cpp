// Tests for the telemetry layer (src/obs): counter/histogram correctness
// under concurrent ThreadPool load, trace-event JSON well-formedness, the
// JSON writer/parser pair, and the disabled-mode contract (no recording, no
// allocation).

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <sstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace nncs::obs {
namespace {

// Global operator new/delete instrumentation for the zero-allocation test.
std::atomic<std::size_t> g_allocations{0};

}  // namespace
}  // namespace nncs::obs

void* operator new(std::size_t size) {
  ++nncs::obs::g_allocations;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc{};
}

// The nothrow variant must be replaced too: libstdc++'s temporary buffers
// (e.g. stable_sort's) allocate with new(nothrow) but release through
// operator delete. Leaving it to the default (or to ASan's interceptor)
// makes that pairing an alloc-dealloc mismatch under sanitizers.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++nncs::obs::g_allocations;
  return std::malloc(size);
}

// All global operators are replaced, so new's malloc always pairs with
// delete's free — GCC just can't see across the replacement boundary.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace nncs::obs {
namespace {

/// RAII guard: telemetry off + metrics zeroed on both ends, so tests don't
/// leak enabled-state into each other.
struct TelemetryGuard {
  TelemetryGuard() { clean(); }
  ~TelemetryGuard() { clean(); }
  static void clean() {
    set_enabled(false);
    TraceRecorder::instance().stop();
    Registry::instance().reset();
  }
};

TEST(ObsCounter, AddAndMergeOnRead) {
  TelemetryGuard guard;
  set_enabled(true);
  Counter& c = Registry::instance().counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, DisabledAddIsDropped) {
  TelemetryGuard guard;
  Counter& c = Registry::instance().counter("test.disabled");
  c.add(7);
  EXPECT_EQ(c.value(), 0u);
  NNCS_COUNT("test.disabled", 9);
  EXPECT_EQ(Registry::instance().snapshot().counter("test.disabled"), 0u);
}

TEST(ObsCounter, ConcurrentAddsAllLand) {
  TelemetryGuard guard;
  set_enabled(true);
  Counter& c = Registry::instance().counter("test.concurrent");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  ThreadPool pool(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.submit([&c] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        c.add();
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGauge, AddSubAndMergeOnRead) {
  TelemetryGuard guard;
  set_enabled(true);
  Gauge& g = Registry::instance().gauge("test.gauge");
  g.add(5);
  g.sub(2);
  g.add(-1);
  EXPECT_EQ(g.value(), 2);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsGauge, DisabledAddIsDropped) {
  TelemetryGuard guard;
  Gauge& g = Registry::instance().gauge("test.gauge.disabled");
  g.add(7);
  EXPECT_EQ(g.value(), 0);
  NNCS_GAUGE_ADD("test.gauge.disabled", 9);
  EXPECT_EQ(Registry::instance().snapshot().gauge("test.gauge.disabled"), 0);
}

TEST(ObsGauge, ConcurrentRaiseAndLowerStaysExact) {
  TelemetryGuard guard;
  set_enabled(true);
  Gauge& g = Registry::instance().gauge("test.gauge.mt");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  ThreadPool pool(kThreads);
  // Half the threads raise, half lower from *different* shards: the level
  // must still merge to the exact net.
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.submit([&g, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          g.add(2);
        } else {
          g.sub(1);
        }
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(g.value(),
            static_cast<std::int64_t>(kThreads / 2 * kPerThread * 2 -
                                      kThreads / 2 * kPerThread));
}

TEST(ObsGauge, SnapshotAndLookup) {
  TelemetryGuard guard;
  set_enabled(true);
  Registry::instance().gauge("test.gauge.snap").add(-3);
  const MetricsSnapshot snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.gauge("test.gauge.snap"), -3);
  EXPECT_EQ(snap.gauge("missing"), 0);
}

TEST(ObsHistogram, RecordsCountSumMinMax) {
  TelemetryGuard guard;
  set_enabled(true);
  Histogram& h = Registry::instance().histogram("test.hist");
  h.record_ns(1000);
  h.record_ns(2000);
  h.record_ns(3000);
  const HistogramSnapshot snap = h.snapshot("test.hist");
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.total_seconds, 6000e-9);
  EXPECT_DOUBLE_EQ(snap.min_seconds, 1000e-9);
  EXPECT_DOUBLE_EQ(snap.max_seconds, 3000e-9);
  // Quantiles come from log2 bucket upper bounds: within 2x of the truth.
  EXPECT_GE(snap.p50_seconds, 1000e-9);
  EXPECT_LE(snap.p50_seconds, 2 * 2000e-9);
  EXPECT_GE(snap.p99_seconds, snap.p50_seconds);
}

TEST(ObsHistogram, ConcurrentRecordsAllLand) {
  TelemetryGuard guard;
  set_enabled(true);
  Histogram& h = Registry::instance().histogram("test.hist.mt");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  ThreadPool pool(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.submit([&h, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        h.record_ns(100 * (t + 1));
      }
    });
  }
  pool.wait_idle();
  const HistogramSnapshot snap = h.snapshot("test.hist.mt");
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min_seconds, 100e-9);
  EXPECT_DOUBLE_EQ(snap.max_seconds, 800e-9);
}

TEST(ObsRegistry, SnapshotSortedAndLookups) {
  TelemetryGuard guard;
  set_enabled(true);
  Registry::instance().counter("b.counter").add(2);
  Registry::instance().counter("a.counter").add(1);
  Registry::instance().histogram("z.hist").record_ns(50);
  const MetricsSnapshot snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.counter("a.counter"), 1u);
  EXPECT_EQ(snap.counter("b.counter"), 2u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  ASSERT_NE(snap.histogram("z.hist"), nullptr);
  EXPECT_EQ(snap.histogram("z.hist")->count, 1u);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

TEST(ObsSpan, RecordsHistogramWhenEnabled) {
  TelemetryGuard guard;
  set_enabled(true);
  {
    NNCS_SPAN("test.span");
  }
  {
    NNCS_SPAN("test.span");
  }
  const MetricsSnapshot snap = Registry::instance().snapshot();
  ASSERT_NE(snap.histogram("test.span"), nullptr);
  EXPECT_EQ(snap.histogram("test.span")->count, 2u);
}

TEST(ObsSpan, DisabledModeMakesNoAllocations) {
  TelemetryGuard guard;
  // Warm the call site (static SpanSite init) while enabled.
  set_enabled(true);
  {
    NNCS_SPAN("test.noalloc");
    NNCS_COUNT("test.noalloc.count", 1);
  }
  set_enabled(false);
  const std::size_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    NNCS_SPAN("test.noalloc");
    NNCS_COUNT("test.noalloc.count", 1);
  }
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_EQ(Registry::instance().snapshot().counter("test.noalloc.count"), 1u);
}

TEST(ObsTrace, JsonRoundTripsWithWorkerTracks) {
  TelemetryGuard guard;
  set_enabled(true);
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.start();
  constexpr std::size_t kThreads = 4;
  ThreadPool pool(kThreads);
  std::atomic<int> barrier{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.submit([&barrier] {
      // Hold every worker inside its job so all kThreads record a span.
      ++barrier;
      while (barrier.load() < static_cast<int>(kThreads)) {
      }
      NNCS_SPAN_TAGGED("test.work", "root", 7, "depth", 1);
    });
  }
  pool.wait_idle();
  {
    NNCS_SPAN("test.main");
  }
  recorder.stop();
  EXPECT_EQ(recorder.event_count(), kThreads + 1);

  std::ostringstream oss;
  recorder.write_json(oss);
  const JsonValue root = json_parse(oss.str());
  ASSERT_TRUE(root.is_object());
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<std::string> names;
  std::set<double> tids;
  double last_ts = -1.0;
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    if (e.find("ph")->string != "X") {
      continue;
    }
    names.insert(e.find("name")->string);
    tids.insert(e.find("tid")->number);
    EXPECT_GE(e.find("ts")->number, last_ts);  // time-sorted
    last_ts = e.find("ts")->number;
  }
  EXPECT_TRUE(names.contains("test.work"));
  EXPECT_TRUE(names.contains("test.main"));
  EXPECT_EQ(tids.size(), kThreads + 1);

  // Tagged args survive serialization.
  bool found_tagged = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* args = e.find("args");
    if (e.find("name")->string == "test.work" && args != nullptr) {
      EXPECT_DOUBLE_EQ(args->find("root")->number, 7.0);
      EXPECT_DOUBLE_EQ(args->find("depth")->number, 1.0);
      found_tagged = true;
    }
  }
  EXPECT_TRUE(found_tagged);
}

TEST(ObsTrace, InactiveRecorderDropsEvents) {
  TelemetryGuard guard;
  set_enabled(true);
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.start();
  recorder.stop();
  {
    NNCS_SPAN("test.dropped");
  }
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(ObsJson, WriterEscapesAndNests) {
  std::ostringstream oss;
  JsonWriter w(oss);
  w.begin_object();
  w.field("s", "a\"b\\c\n");
  w.field("n", 1.5);
  w.field("i", std::int64_t{-3});
  w.field("b", true);
  w.key("arr").begin_array().value(std::uint64_t{7}).null().end_array();
  w.end_object();
  const JsonValue v = json_parse(oss.str());
  EXPECT_EQ(v.find("s")->string, "a\"b\\c\n");
  EXPECT_DOUBLE_EQ(v.find("n")->number, 1.5);
  EXPECT_DOUBLE_EQ(v.find("i")->number, -3.0);
  EXPECT_TRUE(v.find("b")->boolean);
  ASSERT_EQ(v.find("arr")->array.size(), 2u);
  EXPECT_EQ(v.find("arr")->array[1].kind, JsonValue::Kind::kNull);
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), JsonParseError);
  EXPECT_THROW(json_parse("{"), JsonParseError);
  EXPECT_THROW(json_parse("{} trailing"), JsonParseError);
  EXPECT_THROW(json_parse("[1,]"), JsonParseError);
  EXPECT_THROW(json_parse("{\"a\" 1}"), JsonParseError);
}

TEST(ObsMetrics, WriteMetricsIncludesGauges) {
  TelemetryGuard guard;
  set_enabled(true);
  Registry::instance().counter("w.counter").add(4);
  Registry::instance().gauge("w.gauge").add(-2);
  std::ostringstream oss;
  JsonWriter w(oss);
  write_metrics(w, Registry::instance().snapshot());
  const JsonValue v = json_parse(oss.str());
  const JsonValue* gauges = v.find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("w.gauge"), nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("w.gauge")->number, -2.0);
  ASSERT_NE(v.find("counters"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("counters")->find("w.counter")->number, 4.0);
}

TEST(ObsProvenance, CollectAndSerialize) {
  TelemetryGuard guard;
  const Provenance p = collect_provenance();
  EXPECT_FALSE(p.git_sha.empty());
  EXPECT_FALSE(p.compiler.empty());
  std::ostringstream oss;
  JsonWriter w(oss);
  write_provenance(w, p);
  const JsonValue v = json_parse(oss.str());
  EXPECT_EQ(v.find("git_sha")->string, p.git_sha);
  EXPECT_FALSE(v.find("telemetry_enabled")->boolean);
}

}  // namespace
}  // namespace nncs::obs
