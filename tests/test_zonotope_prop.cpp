// Tests for the zonotope network transformer: containment properties,
// tightness vs plain intervals, the zonotope argmin refinement and the
// controller integration (NnDomain::kAffine).

#include <gtest/gtest.h>

#include <memory>

#include "core/controller.hpp"
#include "nn/argmin_analysis.hpp"
#include "nn/interval_prop.hpp"
#include "nn/trainer.hpp"
#include "nn/zonotope_prop.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

Network random_network(std::uint64_t seed, std::vector<std::size_t> sizes) {
  Rng rng(seed);
  Network net = make_zero_network(sizes);
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    for (double& w : net.layer(li).weights.data()) {
      w = rng.uniform(-1.0, 1.0);
    }
    for (double& b : net.layer(li).biases) {
      b = rng.uniform(-0.3, 0.3);
    }
  }
  return net;
}

TEST(ZonotopeProp, AffineNetworkKeepsCorrelations) {
  // y = x0 - x1 then z = y - y via two outputs ... simplest: y0 = x0 + x1,
  // y1 = x0 + x1 + 1: their difference is exactly -1.
  Network net = make_zero_network({2, 2});
  net.layer(0).weights(0, 0) = 1.0;
  net.layer(0).weights(0, 1) = 1.0;
  net.layer(0).weights(1, 0) = 1.0;
  net.layer(0).weights(1, 1) = 1.0;
  net.layer(0).biases[1] = 1.0;
  const auto bounds = zonotope_propagate(net, Box(2, Interval{-1.0, 1.0}));
  const Interval diff = (bounds.outputs[0] - bounds.outputs[1]).range();
  EXPECT_TRUE(diff.contains(-1.0));
  EXPECT_LT(diff.width(), 1e-6);
}

TEST(ZonotopeProp, RejectsDimensionMismatch) {
  const Network net = random_network(1, {3, 4, 2});
  EXPECT_THROW(zonotope_propagate(net, Box{Interval{0.0, 1.0}}), std::invalid_argument);
}

TEST(ZonotopeProp, StableReluPathIsExact) {
  // relu(x + 5) with x in [0,1] stays active: output = x + 5 exactly.
  Network net = make_zero_network({1, 1, 1});
  net.layer(0).weights(0, 0) = 1.0;
  net.layer(0).biases[0] = 5.0;
  net.layer(1).weights(0, 0) = 1.0;
  const auto bounds = zonotope_propagate(net, Box{Interval{0.0, 1.0}});
  EXPECT_NEAR(bounds.output_box[0].lo(), 5.0, 1e-6);
  EXPECT_NEAR(bounds.output_box[0].hi(), 6.0, 1e-6);
}

TEST(ZonotopeProp, TighterThanIntervalOnTrainedNetwork) {
  Dataset data;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Vec{x0, x1}, Vec{std::fabs(x0) + 0.5 * x1, x0 - x1});
  }
  TrainerConfig tc;
  tc.hidden = {16, 16};
  tc.epochs = 40;
  const Network net = Trainer(tc).train(data, 2, 2);
  double zono_total = 0.0;
  double int_total = 0.0;
  Rng boxes(5);
  for (int trial = 0; trial < 30; ++trial) {
    const double lo0 = boxes.uniform(-1.0, 0.8);
    const double lo1 = boxes.uniform(-1.0, 0.8);
    const Box input{Interval{lo0, lo0 + 0.2}, Interval{lo1, lo1 + 0.2}};
    const auto zono = zonotope_propagate(net, input);
    const Box itv = interval_propagate(net, input);
    for (std::size_t j = 0; j < 2; ++j) {
      zono_total += zono.output_box[j].width();
      int_total += itv[j].width();
    }
  }
  EXPECT_LT(zono_total, int_total * 0.7);
}

TEST(ZonotopeArgmin, ExcludesDominatedViaCancellation) {
  // y0 = h, y1 = h + 1 (h = relu(x), stably active on [0.5, 2]).
  Network net = make_zero_network({1, 1, 2});
  net.layer(0).weights(0, 0) = 1.0;
  net.layer(1).weights(0, 0) = 1.0;
  net.layer(1).weights(1, 0) = 1.0;
  net.layer(1).biases[1] = 1.0;
  const auto bounds = zonotope_propagate(net, Box{Interval{0.5, 2.0}});
  const auto cmin = possible_argmin(bounds);
  ASSERT_EQ(cmin.size(), 1u);
  EXPECT_EQ(cmin[0], 0u);
  const auto cmax = possible_argmax(bounds);
  ASSERT_EQ(cmax.size(), 1u);
  EXPECT_EQ(cmax[0], 1u);
}

// Containment property across network shapes.
class ZonotopePropContainment
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(ZonotopePropContainment, RandomBoxesContainSampledOutputs) {
  const auto sizes = GetParam();
  Rng rng(99);
  for (int net_trial = 0; net_trial < 5; ++net_trial) {
    const Network net = random_network(500 + net_trial, sizes);
    for (int box_trial = 0; box_trial < 10; ++box_trial) {
      std::vector<Interval> dims;
      for (std::size_t d = 0; d < sizes.front(); ++d) {
        const double lo = rng.uniform(-2.0, 2.0);
        dims.emplace_back(lo, lo + rng.uniform(0.0, 1.0));
      }
      const Box input{dims};
      const auto bounds = zonotope_propagate(net, input);
      for (int s = 0; s < 20; ++s) {
        Vec x(sizes.front());
        for (std::size_t d = 0; d < x.size(); ++d) {
          x[d] = rng.uniform(input[d].lo(), input[d].hi());
        }
        const Vec y = net.eval(x);
        for (std::size_t j = 0; j < y.size(); ++j) {
          ASSERT_TRUE(bounds.output_box[j].contains(y[j]))
              << "output " << j << " = " << y[j] << " not in "
              << bounds.output_box[j].str();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ZonotopePropContainment,
                         ::testing::Values(std::vector<std::size_t>{1, 4, 1},
                                           std::vector<std::size_t>{2, 8, 8, 2},
                                           std::vector<std::size_t>{3, 16, 16, 16, 5},
                                           std::vector<std::size_t>{5, 32, 32, 5}));

// Argmin soundness sweep mirroring the symbolic-domain test.
TEST(ZonotopeArgminProperty, SoundOnRandomNetworks) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const Network net = random_network(600 + trial, {2, 8, 4});
    const Box input(2, Interval{-0.5, 0.5});
    const auto bounds = zonotope_propagate(net, input);
    const auto candidates = possible_argmin(bounds);
    for (int s = 0; s < 50; ++s) {
      const Vec x{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)};
      const std::size_t k = concrete_argmin(net.eval(x));
      ASSERT_NE(std::find(candidates.begin(), candidates.end(), k), candidates.end());
    }
  }
}

// Controller integration: the kAffine domain is sound end to end.
TEST(ZonotopeController, ConcreteCommandAlwaysInAbstractSet) {
  Rng rng(24);
  std::vector<Network> nets;
  for (int n = 0; n < 2; ++n) {
    nets.push_back(random_network(700 + n, {2, 6, 2}));
  }
  const NeuralController ctrl(CommandSet({Vec{0.0}, Vec{1.0}}), std::move(nets), {0, 1},
                              std::make_unique<IdentityPre>(2),
                              std::make_unique<ArgminPost>(), NnDomain::kAffine);
  for (int b = 0; b < 20; ++b) {
    const double lo0 = rng.uniform(-1.0, 1.0);
    const double lo1 = rng.uniform(-1.0, 1.0);
    const Box box{Interval{lo0, lo0 + 0.3}, Interval{lo1, lo1 + 0.3}};
    for (std::size_t prev = 0; prev < 2; ++prev) {
      const auto abstract = ctrl.step_abstract(box, prev);
      for (int s = 0; s < 20; ++s) {
        const Vec x{rng.uniform(box[0].lo(), box[0].hi()),
                    rng.uniform(box[1].lo(), box[1].hi())};
        const std::size_t chosen = ctrl.step(x, prev);
        ASSERT_NE(std::find(abstract.commands.begin(), abstract.commands.end(), chosen),
                  abstract.commands.end());
      }
    }
  }
}

}  // namespace
}  // namespace nncs
