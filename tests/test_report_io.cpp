// Round-trip and error-handling tests for the verification-report CSV
// serialization.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/report_io.hpp"

namespace nncs {
namespace {

VerifyReport sample_report() {
  VerifyReport report;
  report.root_cells = 4;
  report.coverage_percent = 62.5;
  report.seconds = 12.75;
  report.proved_by_depth = {2, 1};
  CellOutcome a;
  a.root_index = 0;
  a.depth = 0;
  a.outcome = ReachOutcome::kProvedSafe;
  a.stats.seconds = 0.5;
  a.initial = SymbolicState{Box{Interval{-1.0, 2.0}, Interval{0.125, 0.25}}, 3};
  CellOutcome b;
  b.root_index = 2;
  b.depth = 1;
  b.outcome = ReachOutcome::kErrorReachable;
  b.stats.seconds = 1.25;
  b.initial = SymbolicState{Box{Interval{5.0, 6.0}, Interval{-0.5, 0.5}}, 0};
  report.leaves = {a, b};
  report.proved_leaves = 1;
  report.failed_leaves = 1;
  return report;
}

TEST(ReportIo, RoundTripPreservesEverything) {
  const VerifyReport original = sample_report();
  std::stringstream buffer;
  save_report(original, buffer);
  const VerifyReport loaded = load_report(buffer);
  EXPECT_EQ(loaded.root_cells, original.root_cells);
  EXPECT_DOUBLE_EQ(loaded.coverage_percent, original.coverage_percent);
  EXPECT_DOUBLE_EQ(loaded.seconds, original.seconds);
  EXPECT_EQ(loaded.proved_by_depth, original.proved_by_depth);
  EXPECT_EQ(loaded.proved_leaves, original.proved_leaves);
  EXPECT_EQ(loaded.failed_leaves, original.failed_leaves);
  ASSERT_EQ(loaded.leaves.size(), original.leaves.size());
  for (std::size_t i = 0; i < loaded.leaves.size(); ++i) {
    EXPECT_EQ(loaded.leaves[i].root_index, original.leaves[i].root_index);
    EXPECT_EQ(loaded.leaves[i].depth, original.leaves[i].depth);
    EXPECT_EQ(loaded.leaves[i].outcome, original.leaves[i].outcome);
    EXPECT_DOUBLE_EQ(loaded.leaves[i].stats.seconds, original.leaves[i].stats.seconds);
    EXPECT_EQ(loaded.leaves[i].initial.command, original.leaves[i].initial.command);
    EXPECT_EQ(loaded.leaves[i].initial.box, original.leaves[i].initial.box);
  }
}

TEST(ReportIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "nncs_report_test.csv";
  save_report(sample_report(), path);
  const VerifyReport loaded = load_report(path);
  EXPECT_EQ(loaded.leaves.size(), 2u);
  std::filesystem::remove(path);
}

TEST(ReportIo, MissingFileThrows) {
  EXPECT_THROW(load_report(std::filesystem::path{"/nonexistent/report.csv"}),
               std::runtime_error);
}

TEST(ReportIo, BadHeaderThrows) {
  std::stringstream buffer("something-else,1,2,3\n");
  EXPECT_THROW(load_report(buffer), ReportFormatError);
  std::stringstream empty;
  EXPECT_THROW(load_report(empty), ReportFormatError);
}

TEST(ReportIo, MalformedLeafThrows) {
  std::stringstream buffer("nncs-report v1,1,0,0,0\n0,0,proved-safe\n");
  EXPECT_THROW(load_report(buffer), ReportFormatError);
}

TEST(ReportIo, UnknownOutcomeThrows) {
  std::stringstream buffer("nncs-report v1,1,0,0,0\n0,0,banana,0.1,0,0,1\n");
  EXPECT_THROW(load_report(buffer), ReportFormatError);
}

TEST(ReportIo, NumbersRoundTripBitExact) {
  VerifyReport report = sample_report();
  report.leaves[0].initial.box = Box{Interval{0.1, 0.30000000000000004}};
  std::stringstream buffer;
  save_report(report, buffer);
  const VerifyReport loaded = load_report(buffer);
  EXPECT_EQ(loaded.leaves[0].initial.box[0].lo(), 0.1);
  EXPECT_EQ(loaded.leaves[0].initial.box[0].hi(), 0.30000000000000004);
}

}  // namespace
}  // namespace nncs
