// Round-trip and error-handling tests for the verification-report CSV
// serialization.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/report_io.hpp"

namespace nncs {
namespace {

VerifyReport sample_report() {
  VerifyReport report;
  report.root_cells = 4;
  report.coverage_percent = 62.5;
  report.seconds = 12.75;
  report.proved_by_depth = {2, 1};
  CellOutcome a;
  a.root_index = 0;
  a.depth = 0;
  a.outcome = ReachOutcome::kProvedSafe;
  a.stats.seconds = 0.5;
  a.stats.steps_executed = 30;
  a.stats.joins = 7;
  a.stats.max_states = 5;
  a.stats.total_simulations = 60;
  a.stats.phases.simulate_seconds = 0.25;
  a.stats.phases.controller_seconds = 0.125;
  a.stats.phases.join_seconds = 0.0625;
  a.stats.phases.check_seconds = 0.03125;
  a.initial = SymbolicState{Box{Interval{-1.0, 2.0}, Interval{0.125, 0.25}}, 3};
  CellOutcome b;
  b.root_index = 2;
  b.depth = 1;
  b.outcome = ReachOutcome::kErrorReachable;
  b.stats.seconds = 1.25;
  b.stats.steps_executed = 12;
  b.stats.total_simulations = 24;
  b.initial = SymbolicState{Box{Interval{5.0, 6.0}, Interval{-0.5, 0.5}}, 0};
  report.leaves = {a, b};
  report.proved_leaves = 1;
  report.failed_leaves = 1;
  return report;
}

TEST(ReportIo, RoundTripPreservesEverything) {
  const VerifyReport original = sample_report();
  std::stringstream buffer;
  save_report(original, buffer);
  const VerifyReport loaded = load_report(buffer);
  EXPECT_EQ(loaded.root_cells, original.root_cells);
  EXPECT_DOUBLE_EQ(loaded.coverage_percent, original.coverage_percent);
  EXPECT_DOUBLE_EQ(loaded.seconds, original.seconds);
  EXPECT_EQ(loaded.proved_by_depth, original.proved_by_depth);
  EXPECT_EQ(loaded.proved_leaves, original.proved_leaves);
  EXPECT_EQ(loaded.failed_leaves, original.failed_leaves);
  ASSERT_EQ(loaded.leaves.size(), original.leaves.size());
  for (std::size_t i = 0; i < loaded.leaves.size(); ++i) {
    EXPECT_EQ(loaded.leaves[i].root_index, original.leaves[i].root_index);
    EXPECT_EQ(loaded.leaves[i].depth, original.leaves[i].depth);
    EXPECT_EQ(loaded.leaves[i].outcome, original.leaves[i].outcome);
    EXPECT_DOUBLE_EQ(loaded.leaves[i].stats.seconds, original.leaves[i].stats.seconds);
    EXPECT_EQ(loaded.leaves[i].stats.steps_executed, original.leaves[i].stats.steps_executed);
    EXPECT_EQ(loaded.leaves[i].stats.joins, original.leaves[i].stats.joins);
    EXPECT_EQ(loaded.leaves[i].stats.max_states, original.leaves[i].stats.max_states);
    EXPECT_EQ(loaded.leaves[i].stats.total_simulations,
              original.leaves[i].stats.total_simulations);
    EXPECT_DOUBLE_EQ(loaded.leaves[i].stats.phases.simulate_seconds,
                     original.leaves[i].stats.phases.simulate_seconds);
    EXPECT_DOUBLE_EQ(loaded.leaves[i].stats.phases.controller_seconds,
                     original.leaves[i].stats.phases.controller_seconds);
    EXPECT_DOUBLE_EQ(loaded.leaves[i].stats.phases.join_seconds,
                     original.leaves[i].stats.phases.join_seconds);
    EXPECT_DOUBLE_EQ(loaded.leaves[i].stats.phases.check_seconds,
                     original.leaves[i].stats.phases.check_seconds);
    EXPECT_EQ(loaded.leaves[i].initial.command, original.leaves[i].initial.command);
    EXPECT_EQ(loaded.leaves[i].initial.box(), original.leaves[i].initial.box());
  }
}

TEST(ReportIo, SavesCurrentFormatVersion) {
  std::stringstream buffer;
  save_report(sample_report(), buffer);
  EXPECT_EQ(buffer.str().rfind("nncs-report v2,", 0), 0u);
}

TEST(ReportIo, LoadsLegacyV1WithZeroStats) {
  // A v1 file has only 5 fixed leaf columns: root,depth,outcome,seconds,
  // command — no per-phase stats. They must load with stats zeroed.
  std::stringstream buffer(
      "nncs-report v1,2,50,3.5,1\n"
      "0,0,proved-safe,0.75,3,-1,2,0.5,0.625\n"
      "1,0,error-reachable,1.5,0,4,5,-0.25,0.25\n");
  const VerifyReport loaded = load_report(buffer);
  ASSERT_EQ(loaded.leaves.size(), 2u);
  EXPECT_EQ(loaded.root_cells, 2u);
  EXPECT_EQ(loaded.proved_leaves, 1u);
  const CellOutcome& leaf = loaded.leaves[0];
  EXPECT_DOUBLE_EQ(leaf.stats.seconds, 0.75);
  EXPECT_EQ(leaf.stats.steps_executed, 0);
  EXPECT_EQ(leaf.stats.joins, 0u);
  EXPECT_EQ(leaf.stats.max_states, 0u);
  EXPECT_EQ(leaf.stats.total_simulations, 0u);
  EXPECT_DOUBLE_EQ(leaf.stats.phases.total(), 0.0);
  EXPECT_EQ(leaf.initial.command, 3u);
  ASSERT_EQ(leaf.initial.box().dim(), 2u);
  EXPECT_DOUBLE_EQ(leaf.initial.box()[0].lo(), -1.0);
  EXPECT_DOUBLE_EQ(leaf.initial.box()[1].hi(), 0.625);
}

TEST(ReportIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "nncs_report_test.csv";
  save_report(sample_report(), path);
  const VerifyReport loaded = load_report(path);
  EXPECT_EQ(loaded.leaves.size(), 2u);
  std::filesystem::remove(path);
}

TEST(ReportIo, MissingFileThrows) {
  EXPECT_THROW(load_report(std::filesystem::path{"/nonexistent/report.csv"}),
               std::runtime_error);
}

TEST(ReportIo, BadHeaderThrows) {
  std::stringstream buffer("something-else,1,2,3\n");
  EXPECT_THROW(load_report(buffer), ReportFormatError);
  std::stringstream empty;
  EXPECT_THROW(load_report(empty), ReportFormatError);
}

TEST(ReportIo, MalformedLeafThrows) {
  std::stringstream buffer("nncs-report v1,1,0,0,0\n0,0,proved-safe\n");
  EXPECT_THROW(load_report(buffer), ReportFormatError);
}

TEST(ReportIo, UnknownOutcomeThrows) {
  std::stringstream buffer("nncs-report v1,1,0,0,0\n0,0,banana,0.1,0,0,1\n");
  EXPECT_THROW(load_report(buffer), ReportFormatError);
}

TEST(ReportIo, NumbersRoundTripBitExact) {
  VerifyReport report = sample_report();
  report.leaves[0].initial.abstract = Box{Interval{0.1, 0.30000000000000004}};
  std::stringstream buffer;
  save_report(report, buffer);
  const VerifyReport loaded = load_report(buffer);
  EXPECT_EQ(loaded.leaves[0].initial.box()[0].lo(), 0.1);
  EXPECT_EQ(loaded.leaves[0].initial.box()[0].hi(), 0.30000000000000004);
}

TEST(ReportIo, SubnormalBoundsRoundTripBitExact) {
  // Box bounds near zero can be subnormal (scenario generators produce
  // them); std::stod would reject these as out-of-range.
  VerifyReport report = sample_report();
  report.leaves[0].initial.abstract = Box{Interval{-1.5810594732565731e-319, 4.9406564584124654e-324}};
  std::stringstream buffer;
  save_report(report, buffer);
  const VerifyReport loaded = load_report(buffer);
  EXPECT_EQ(loaded.leaves[0].initial.box()[0].lo(), -1.5810594732565731e-319);
  EXPECT_EQ(loaded.leaves[0].initial.box()[0].hi(), 4.9406564584124654e-324);
}

TEST(ReportIo, CancelledOutcomeRoundTrips) {
  VerifyReport report = sample_report();
  report.leaves[1].outcome = ReachOutcome::kCancelled;
  std::stringstream buffer;
  save_report(report, buffer);
  const VerifyReport loaded = load_report(buffer);
  EXPECT_EQ(loaded.leaves[1].outcome, ReachOutcome::kCancelled);
}

EngineCheckpoint sample_checkpoint() {
  EngineCheckpoint cp;
  cp.root_cells = 4;
  cp.interior_stats.steps_executed = 90;
  cp.interior_stats.joins = 21;
  cp.interior_stats.max_states = 6;
  cp.interior_stats.total_simulations = 180;
  cp.interior_stats.seconds = 2.5;
  cp.interior_stats.phases.simulate_seconds = 1.25;
  cp.interior_stats.phases.controller_seconds = 0.5;
  cp.interior_stats.phases.join_seconds = 0.25;
  cp.interior_stats.phases.check_seconds = 0.125;
  cp.leaves = sample_report().leaves;
  VerifyJob j1;
  j1.cell = SymbolicState{Box{Interval{0.1, 0.30000000000000004}, Interval{-2.0, 2.0}}, 1};
  j1.depth = 1;
  j1.root_index = 3;
  VerifyJob j2;
  j2.cell = SymbolicState{Box{Interval{-1.0, 0.0}, Interval{0.0, 1.0}}, 0};
  j2.depth = 0;
  j2.root_index = 1;
  cp.frontier = {j1, j2};
  return cp;
}

TEST(ReportIo, CheckpointRoundTripPreservesEverything) {
  const EngineCheckpoint original = sample_checkpoint();
  std::stringstream buffer;
  save_checkpoint(original, buffer);
  EXPECT_EQ(buffer.str().rfind("nncs-checkpoint v1,", 0), 0u);
  const EngineCheckpoint loaded = load_checkpoint(buffer);
  EXPECT_EQ(loaded.root_cells, original.root_cells);
  EXPECT_EQ(loaded.interior_stats.steps_executed, original.interior_stats.steps_executed);
  EXPECT_EQ(loaded.interior_stats.joins, original.interior_stats.joins);
  EXPECT_EQ(loaded.interior_stats.max_states, original.interior_stats.max_states);
  EXPECT_EQ(loaded.interior_stats.total_simulations,
            original.interior_stats.total_simulations);
  EXPECT_DOUBLE_EQ(loaded.interior_stats.seconds, original.interior_stats.seconds);
  EXPECT_DOUBLE_EQ(loaded.interior_stats.phases.total(),
                   original.interior_stats.phases.total());
  ASSERT_EQ(loaded.leaves.size(), original.leaves.size());
  for (std::size_t i = 0; i < loaded.leaves.size(); ++i) {
    EXPECT_EQ(loaded.leaves[i].root_index, original.leaves[i].root_index);
    EXPECT_EQ(loaded.leaves[i].outcome, original.leaves[i].outcome);
    EXPECT_EQ(loaded.leaves[i].initial.box(), original.leaves[i].initial.box());
  }
  ASSERT_EQ(loaded.frontier.size(), original.frontier.size());
  for (std::size_t i = 0; i < loaded.frontier.size(); ++i) {
    EXPECT_EQ(loaded.frontier[i].root_index, original.frontier[i].root_index);
    EXPECT_EQ(loaded.frontier[i].depth, original.frontier[i].depth);
    EXPECT_EQ(loaded.frontier[i].cell.command, original.frontier[i].cell.command);
    // Bit-exact boxes: resume must analyze exactly the cells that were
    // pending, or the merged report drifts from the uninterrupted one.
    EXPECT_EQ(loaded.frontier[i].cell.box(), original.frontier[i].cell.box());
  }
}

TEST(ReportIo, CheckpointWithEmptySectionsRoundTrips) {
  EngineCheckpoint cp;
  cp.root_cells = 1;
  std::stringstream buffer;
  save_checkpoint(cp, buffer);
  const EngineCheckpoint loaded = load_checkpoint(buffer);
  EXPECT_EQ(loaded.root_cells, 1u);
  EXPECT_TRUE(loaded.leaves.empty());
  EXPECT_TRUE(loaded.frontier.empty());
  EXPECT_EQ(loaded.interior_stats.total_simulations, 0u);
}

TEST(ReportIo, CheckpointFileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "nncs_checkpoint_test.csv";
  save_checkpoint(sample_checkpoint(), path);
  const EngineCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.frontier.size(), 2u);
  std::filesystem::remove(path);
}

TEST(ReportIo, MalformedCheckpointThrows) {
  // Wrong magic.
  std::stringstream bad_header("nncs-report v2,4\n");
  EXPECT_THROW(load_checkpoint(bad_header), ReportFormatError);
  // Truncated after the header.
  std::stringstream truncated("nncs-checkpoint v1,4\n");
  EXPECT_THROW(load_checkpoint(truncated), ReportFormatError);
  // Interior row with too few fields.
  std::stringstream bad_interior("nncs-checkpoint v1,4\ninterior,1,2\n");
  EXPECT_THROW(load_checkpoint(bad_interior), ReportFormatError);
  // Leaf section promises more rows than the file holds.
  std::stringstream missing_leaves(
      "nncs-checkpoint v1,4\n"
      "interior,0,0,0,0,0,0,0,0,0\n"
      "leaves,2\n"
      "0,0,proved-safe,0.5,30,7,5,60,0.25,0.125,0.0625,0.03125,3,-1,2\n");
  EXPECT_THROW(load_checkpoint(missing_leaves), ReportFormatError);
  // Frontier row with an odd number of box bounds.
  std::stringstream bad_frontier(
      "nncs-checkpoint v1,1\n"
      "interior,0,0,0,0,0,0,0,0,0\n"
      "leaves,0\n"
      "frontier,1\n"
      "0,0,0,1.0\n");
  EXPECT_THROW(load_checkpoint(bad_frontier), ReportFormatError);
  EXPECT_THROW(load_checkpoint(std::filesystem::path{"/nonexistent/checkpoint.csv"}),
               std::runtime_error);
}

}  // namespace
}  // namespace nncs
