// Tests for the batched SoA propagation kernels (nn/kernels.hpp): the
// rounding primitives against their libm references, ISA dispatch parsing,
// and — the load-bearing property — bit-identity of the batched interval
// and symbolic transformers against the scalar reference transformers on
// fuzzed networks, for every compiled back end.

#include <gtest/gtest.h>

#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "interval/affine_set.hpp"
#include "nn/interval_prop.hpp"
#include "nn/kernels.hpp"
#include "nn/symbolic_prop.hpp"
#include "nn/trainer.hpp"
#include "nn/zonotope_prop.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

std::uint64_t bits_of(double x) { return std::bit_cast<std::uint64_t>(x); }

::testing::AssertionResult bits_eq(double a, double b) {
  if (bits_of(a) == bits_of(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << bits_of(a) << ") != " << std::dec << b << " (0x"
         << std::hex << bits_of(b) << ")";
}

::testing::AssertionResult boxes_bitwise_eq(const Box& a, const Box& b) {
  if (a.dim() != b.dim()) {
    return ::testing::AssertionFailure() << "dim " << a.dim() << " != " << b.dim();
  }
  for (std::size_t i = 0; i < a.dim(); ++i) {
    if (bits_of(a[i].lo()) != bits_of(b[i].lo()) || bits_of(a[i].hi()) != bits_of(b[i].hi())) {
      return ::testing::AssertionFailure()
             << "dim " << i << ": [" << a[i].lo() << ", " << a[i].hi() << "] != [" << b[i].lo()
             << ", " << b[i].hi() << "] (bitwise)";
    }
  }
  return ::testing::AssertionSuccess();
}

Network random_network(std::uint64_t seed, std::vector<std::size_t> sizes) {
  Rng rng(seed);
  Network net = make_zero_network(sizes);
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    for (double& w : net.layer(li).weights.data()) {
      // Sprinkle the exact values the kernels special-case (identity and
      // zero weights have dedicated fast paths) among generic ones.
      const double pick = rng.uniform(0.0, 1.0);
      if (pick < 0.08) {
        w = 0.0;
      } else if (pick < 0.16) {
        w = 1.0;
      } else {
        w = rng.uniform(-1.5, 1.5);
      }
    }
    for (double& b : net.layer(li).biases) {
      b = rng.uniform(-0.5, 0.5);
    }
  }
  return net;
}

Box random_box(Rng& rng, std::size_t dim) {
  std::vector<Interval> iv;
  iv.reserve(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    if (rng.chance(0.1)) {
      // Degenerate dimension: [a, a] exercises the point-interval paths.
      iv.emplace_back(a);
    } else if (rng.chance(0.05)) {
      // Exact-zero bound: exercises the 0/1 special cases with ±0 ties.
      iv.emplace_back(0.0, std::fabs(a));
    } else {
      const double b = rng.uniform(-2.0, 2.0);
      iv.emplace_back(std::min(a, b), std::max(a, b));
    }
  }
  return Box{std::move(iv)};
}

std::vector<kern::Isa> compiled_isas() {
  std::vector<kern::Isa> isas{kern::Isa::kPortable};
  if (kern::cpu_supports_avx2()) {
    isas.push_back(kern::Isa::kAvx2);
  }
  return isas;
}

TEST(Kernels, NextUpDownMatchNextafter) {
  Rng rng(7);
  std::vector<double> samples = {0.0,
                                 -0.0,
                                 DBL_MIN,
                                 -DBL_MIN,
                                 DBL_MAX,
                                 -DBL_MAX,
                                 DBL_TRUE_MIN,
                                 -DBL_TRUE_MIN,
                                 1.0,
                                 -1.0,
                                 std::numeric_limits<double>::infinity(),
                                 -std::numeric_limits<double>::infinity()};
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(rng.uniform(-1e9, 1e9) * std::pow(10.0, rng.uniform_int(-30, 30)));
  }
  for (const double x : samples) {
    const double up = std::nextafter(x, std::numeric_limits<double>::infinity());
    const double down = std::nextafter(x, -std::numeric_limits<double>::infinity());
    EXPECT_TRUE(bits_eq(kern::next_up(x), up)) << "next_up(" << x << ")";
    EXPECT_TRUE(bits_eq(kern::next_down(x), down)) << "next_down(" << x << ")";
  }
}

TEST(Kernels, ResolveIsaParsesEnvValues) {
  using kern::Isa;
  using kern::resolve_isa;
  EXPECT_EQ(resolve_isa(nullptr, /*cpu_avx2=*/true), Isa::kAvx2);
  EXPECT_EQ(resolve_isa(nullptr, /*cpu_avx2=*/false), Isa::kPortable);
  EXPECT_EQ(resolve_isa("auto", true), Isa::kAvx2);
  EXPECT_EQ(resolve_isa("portable", true), Isa::kPortable);
  EXPECT_EQ(resolve_isa("off", true), Isa::kPortable);
  EXPECT_EQ(resolve_isa("scalar", true), Isa::kPortable);
  EXPECT_EQ(resolve_isa("avx2", true), Isa::kAvx2);
  // Requesting avx2 on a CPU without it degrades to portable, not UB.
  EXPECT_EQ(resolve_isa("avx2", false), Isa::kPortable);
  EXPECT_EQ(resolve_isa("garbage", false), Isa::kPortable);
  EXPECT_EQ(resolve_isa("", true), Isa::kAvx2);
}

TEST(Kernels, IntervalBatchBitwiseEqualsScalar) {
  const std::vector<std::vector<std::size_t>> shapes = {
      {3, 8, 8, 2}, {2, 5, 5, 5, 3}, {1, 4, 1}, {5, 16, 5}};
  for (const kern::Isa isa : compiled_isas()) {
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      const Network net = random_network(100 + s, shapes[s]);
      Rng rng(200 + s);
      std::vector<Box> inputs;
      for (int k = 0; k < 23; ++k) {
        inputs.push_back(random_box(rng, net.input_dim()));
      }
      // A within-batch duplicate must not perturb its neighbours' lanes.
      inputs.push_back(inputs.front());
      const std::vector<Box> batched = interval_propagate_batch(net, inputs, isa);
      ASSERT_EQ(batched.size(), inputs.size());
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const Box scalar = interval_propagate(net, inputs[i]);
        EXPECT_TRUE(boxes_bitwise_eq(batched[i], scalar))
            << "isa=" << to_string(isa) << " shape=" << s << " input=" << i;
      }
    }
  }
}

TEST(Kernels, SymbolicBatchBitwiseEqualsScalar) {
  const std::vector<std::vector<std::size_t>> shapes = {
      {3, 8, 8, 2}, {2, 5, 5, 5, 3}, {1, 4, 1}, {5, 16, 5}};
  for (const kern::Isa isa : compiled_isas()) {
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      const Network net = random_network(300 + s, shapes[s]);
      Rng rng(400 + s);
      std::vector<Box> inputs;
      for (int k = 0; k < 17; ++k) {
        inputs.push_back(random_box(rng, net.input_dim()));
      }
      const std::vector<SymbolicBounds> batched = symbolic_propagate_batch(net, inputs, isa);
      ASSERT_EQ(batched.size(), inputs.size());
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const SymbolicBounds scalar = symbolic_propagate(net, inputs[i]);
        EXPECT_TRUE(boxes_bitwise_eq(batched[i].input, scalar.input));
        EXPECT_TRUE(boxes_bitwise_eq(batched[i].output_box, scalar.output_box))
            << "isa=" << to_string(isa) << " shape=" << s << " input=" << i;
        ASSERT_EQ(batched[i].outputs.size(), scalar.outputs.size());
        for (std::size_t r = 0; r < scalar.outputs.size(); ++r) {
          const NeuronBounds& bb = batched[i].outputs[r];
          const NeuronBounds& sb = scalar.outputs[r];
          ASSERT_EQ(bb.lower.coeffs.size(), sb.lower.coeffs.size());
          for (std::size_t c = 0; c < sb.lower.coeffs.size(); ++c) {
            EXPECT_TRUE(bits_eq(bb.lower.coeffs[c], sb.lower.coeffs[c]))
                << "lower coeff r=" << r << " c=" << c;
            EXPECT_TRUE(bits_eq(bb.upper.coeffs[c], sb.upper.coeffs[c]))
                << "upper coeff r=" << r << " c=" << c;
          }
          EXPECT_TRUE(bits_eq(bb.lower.constant, sb.lower.constant)) << "lower constant " << r;
          EXPECT_TRUE(bits_eq(bb.upper.constant, sb.upper.constant)) << "upper constant " << r;
          EXPECT_TRUE(bits_eq(bb.lower.err, sb.lower.err)) << "lower err " << r;
          EXPECT_TRUE(bits_eq(bb.upper.err, sb.upper.err)) << "upper err " << r;
        }
      }
    }
  }
}

TEST(Kernels, BatchedTransformersContainConcreteSamples) {
  for (const kern::Isa isa : compiled_isas()) {
    const Network net = random_network(55, {3, 10, 10, 3});
    Rng rng(56);
    std::vector<Box> inputs;
    for (int k = 0; k < 9; ++k) {
      inputs.push_back(random_box(rng, net.input_dim()));
    }
    const std::vector<Box> iv = interval_propagate_batch(net, inputs, isa);
    const std::vector<SymbolicBounds> sym = symbolic_propagate_batch(net, inputs, isa);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      for (int sample = 0; sample < 40; ++sample) {
        Vec x(net.input_dim());
        for (std::size_t d = 0; d < x.size(); ++d) {
          x[d] = rng.uniform(inputs[i][d].lo(), inputs[i][d].hi());
        }
        const Vec y = net.eval(x);
        for (std::size_t d = 0; d < y.size(); ++d) {
          EXPECT_GE(y[d], iv[i][d].lo()) << "interval lo, input " << i << " dim " << d;
          EXPECT_LE(y[d], iv[i][d].hi()) << "interval hi, input " << i << " dim " << d;
          EXPECT_GE(y[d], sym[i].output_box[d].lo()) << "symbolic lo, input " << i;
          EXPECT_LE(y[d], sym[i].output_box[d].hi()) << "symbolic hi, input " << i;
        }
      }
    }
  }
}

::testing::AssertionResult affines_bitwise_eq(const Affine& a, const Affine& b) {
  if (bits_of(a.center()) != bits_of(b.center())) {
    return ::testing::AssertionFailure()
           << "center " << a.center() << " != " << b.center() << " (bitwise)";
  }
  if (bits_of(a.error()) != bits_of(b.error())) {
    return ::testing::AssertionFailure()
           << "err " << a.error() << " != " << b.error() << " (bitwise)";
  }
  if (a.terms().size() != b.terms().size()) {
    return ::testing::AssertionFailure()
           << "term count " << a.terms().size() << " != " << b.terms().size();
  }
  for (std::size_t t = 0; t < a.terms().size(); ++t) {
    if (a.terms()[t].first != b.terms()[t].first ||
        bits_of(a.terms()[t].second) != bits_of(b.terms()[t].second)) {
      return ::testing::AssertionFailure()
             << "term " << t << ": (" << a.terms()[t].first << ", " << a.terms()[t].second
             << ") != (" << b.terms()[t].first << ", " << b.terms()[t].second << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult zonotopes_bitwise_eq(const ZonotopeBounds& a,
                                                const ZonotopeBounds& b) {
  if (a.outputs.size() != b.outputs.size()) {
    return ::testing::AssertionFailure()
           << "output count " << a.outputs.size() << " != " << b.outputs.size();
  }
  for (std::size_t r = 0; r < a.outputs.size(); ++r) {
    const auto eq = affines_bitwise_eq(a.outputs[r], b.outputs[r]);
    if (!eq) {
      return ::testing::AssertionFailure() << "output " << r << ": " << eq.message();
    }
  }
  return boxes_bitwise_eq(a.output_box, b.output_box);
}

TEST(Kernels, ZonotopeBoxBatchBitwiseEqualsScalar) {
  const std::vector<std::vector<std::size_t>> shapes = {
      {3, 8, 8, 2}, {2, 5, 5, 5, 3}, {1, 4, 1}, {5, 16, 5}};
  for (const kern::Isa isa : compiled_isas()) {
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      const Network net = random_network(500 + s, shapes[s]);
      Rng rng(600 + s);
      std::vector<Box> inputs;
      for (int k = 0; k < 19; ++k) {
        inputs.push_back(random_box(rng, net.input_dim()));
      }
      // A within-batch duplicate must not perturb its neighbours' lanes.
      inputs.push_back(inputs.front());
      const std::vector<ZonotopeBounds> batched = zonotope_propagate_batch(net, inputs, isa);
      ASSERT_EQ(batched.size(), inputs.size());
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const ZonotopeBounds scalar = zonotope_propagate(net, inputs[i]);
        EXPECT_TRUE(zonotopes_bitwise_eq(batched[i], scalar))
            << "isa=" << to_string(isa) << " shape=" << s << " input=" << i;
        // The command-pruning consumers must agree too (they are a pure
        // function of the forms, but this pins the end-to-end contract).
        EXPECT_EQ(possible_argmin(batched[i]), possible_argmin(scalar));
        EXPECT_EQ(possible_argmax(batched[i]), possible_argmax(scalar));
      }
    }
  }
}

TEST(Kernels, ZonotopeRelationalBatchBitwiseEqualsScalar) {
  const std::vector<std::vector<std::size_t>> shapes = {{3, 8, 8, 2}, {2, 5, 5, 5, 3}, {5, 16, 5}};
  for (const kern::Isa isa : compiled_isas()) {
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      const Network net = random_network(700 + s, shapes[s]);
      Rng rng(800 + s);
      const std::size_t dim = net.input_dim();
      std::vector<AffineSet> sets;
      for (int k = 0; k < 15; ++k) {
        // Correlated inputs: lift a box, then mix the dimensions through a
        // random interval linear image so the forms share noise symbols
        // (the shape the integrator hands the controller).
        AffineSet set = AffineSet::from_box(random_box(rng, dim));
        IntervalMatrix m(dim, dim);
        for (std::size_t r = 0; r < dim; ++r) {
          for (std::size_t c = 0; c < dim; ++c) {
            const double mid = (r == c) ? 1.0 : rng.uniform(-0.4, 0.4);
            const double rad = rng.chance(0.5) ? 0.0 : 1e-6;
            m.at(r, c) = Interval{mid - rad, mid + rad};
          }
        }
        sets.push_back(set.linear_image(m));
      }
      std::vector<const AffineSet*> ptrs;
      ptrs.reserve(sets.size());
      for (const AffineSet& set : sets) {
        ptrs.push_back(&set);
      }
      const std::vector<ZonotopeBounds> batched = zonotope_propagate_batch(net, ptrs, isa);
      ASSERT_EQ(batched.size(), sets.size());
      for (std::size_t i = 0; i < sets.size(); ++i) {
        NoiseSource scratch = sets[i].noise();
        const ZonotopeBounds scalar = zonotope_propagate(net, sets[i].components(), scratch);
        EXPECT_TRUE(zonotopes_bitwise_eq(batched[i], scalar))
            << "isa=" << to_string(isa) << " shape=" << s << " input=" << i;
        EXPECT_EQ(possible_argmin(batched[i]), possible_argmin(scalar));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Controller-level identity: step_abstract_batch vs a scalar step loop.

NeuralController make_controller(NnDomain domain, NnCacheMode cache_mode, std::uint64_t seed) {
  constexpr std::size_t kStateDim = 3;
  constexpr std::size_t kNumCommands = 4;
  std::vector<Vec> command_vectors;
  for (std::size_t c = 0; c < kNumCommands; ++c) {
    command_vectors.push_back(Vec{static_cast<double>(c)});
  }
  // Two networks so the selector actually routes different batch members to
  // different nets (commands 0/1 -> net 0, commands 2/3 -> net 1).
  std::vector<Network> nets;
  nets.push_back(random_network(seed, {kStateDim, 8, kNumCommands}));
  nets.push_back(random_network(seed + 1, {kStateDim, 8, kNumCommands}));
  std::vector<std::size_t> selector = {0, 0, 1, 1};
  NnCacheConfig cache;
  cache.mode = cache_mode;
  return NeuralController(CommandSet{command_vectors}, std::move(nets), std::move(selector),
                          std::make_unique<IdentityPre>(kStateDim),
                          std::make_unique<ArgminPost>(), domain, cache);
}

void expect_batch_matches_scalar(NnDomain domain, NnCacheMode cache_mode) {
  // Two independent controllers so the scalar loop's cache state cannot
  // leak into the batched run (and vice versa).
  const NeuralController scalar_ctrl = make_controller(domain, cache_mode, 900);
  const NeuralController batch_ctrl = make_controller(domain, cache_mode, 900);
  Rng rng(901);
  std::vector<Box> states;
  std::vector<std::size_t> commands;
  for (int k = 0; k < 13; ++k) {
    states.push_back(random_box(rng, 3));
    commands.push_back(static_cast<std::size_t>(rng.uniform_int(0, 3)));
  }
  // Duplicate state under the same previous command: the scalar loop's memo
  // hit and the batch's dedup must replay the same result.
  states.push_back(states[2]);
  commands.push_back(commands[2]);
  const std::vector<AbstractState> abstract_states(states.begin(), states.end());
  const std::vector<AbstractControlStep> batched =
      batch_ctrl.step_abstract_batch(abstract_states, commands);
  ASSERT_EQ(batched.size(), states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    const AbstractControlStep scalar = scalar_ctrl.step_abstract(states[i], commands[i]);
    EXPECT_EQ(batched[i].commands, scalar.commands) << "state " << i;
    EXPECT_TRUE(boxes_bitwise_eq(batched[i].network_input, scalar.network_input)) << i;
    EXPECT_TRUE(boxes_bitwise_eq(batched[i].network_output, scalar.network_output)) << i;
  }
}

TEST(ControllerBatch, SymbolicNoCache) {
  expect_batch_matches_scalar(NnDomain::kSymbolic, NnCacheMode::kOff);
}

TEST(ControllerBatch, SymbolicMemoCache) {
  expect_batch_matches_scalar(NnDomain::kSymbolic, NnCacheMode::kMemo);
}

TEST(ControllerBatch, SymbolicContainmentCacheFallsBackToScalarLoop) {
  // Containment mode routes through the scalar loop inside the batch call;
  // results must still match a plain scalar loop on a fresh controller.
  expect_batch_matches_scalar(NnDomain::kSymbolic, NnCacheMode::kContainment);
}

TEST(ControllerBatch, IntervalMemoCache) {
  expect_batch_matches_scalar(NnDomain::kInterval, NnCacheMode::kMemo);
}

TEST(ControllerBatch, AffineDomainNoCache) {
  // Box states in the affine domain batch through the zonotope SoA kernel
  // (no scalar fallback remains for this domain).
  expect_batch_matches_scalar(NnDomain::kAffine, NnCacheMode::kOff);
}

TEST(ControllerBatch, AffineDomainMemoCache) {
  expect_batch_matches_scalar(NnDomain::kAffine, NnCacheMode::kMemo);
}

TEST(ControllerBatch, RelationalStatesMatchScalarRelationalStep) {
  // Abstract states carrying relational parts must batch bit-identically to
  // the scalar relational step — for every NN domain, since relational
  // queries always route through the zonotope transformer.
  for (const NnDomain domain : {NnDomain::kSymbolic, NnDomain::kAffine, NnDomain::kInterval}) {
    const NeuralController scalar_ctrl = make_controller(domain, NnCacheMode::kMemo, 920);
    const NeuralController batch_ctrl = make_controller(domain, NnCacheMode::kMemo, 920);
    Rng rng(921);
    std::vector<AbstractState> states;
    std::vector<std::shared_ptr<const AffineSet>> sets;
    std::vector<std::size_t> commands;
    for (int k = 0; k < 9; ++k) {
      const Box box = random_box(rng, 3);
      AffineSet set = AffineSet::from_box(box);
      if (k % 2 == 0) {
        // Half the states carry genuine correlations (non-diagonal image).
        IntervalMatrix m(3, 3);
        for (std::size_t r = 0; r < 3; ++r) {
          for (std::size_t c = 0; c < 3; ++c) {
            m.at(r, c) = Interval{r == c ? 1.0 : rng.uniform(-0.3, 0.3)};
          }
        }
        set = set.linear_image(m);
      }
      auto shared = std::make_shared<const AffineSet>(std::move(set));
      states.emplace_back(shared->concretize(), shared);
      sets.push_back(shared);
      commands.push_back(static_cast<std::size_t>(rng.uniform_int(0, 3)));
    }
    // Interleave a box-only state: mixed batches must keep both paths apart.
    states.emplace_back(random_box(rng, 3));
    sets.push_back(nullptr);
    commands.push_back(static_cast<std::size_t>(rng.uniform_int(0, 3)));
    const std::vector<AbstractControlStep> batched =
        batch_ctrl.step_abstract_batch(states, commands);
    ASSERT_EQ(batched.size(), states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
      const AbstractControlStep scalar =
          sets[i] ? scalar_ctrl.step_abstract_relational(*sets[i], commands[i])
                  : scalar_ctrl.step_abstract(states[i].box(), commands[i]);
      EXPECT_EQ(batched[i].commands, scalar.commands) << "state " << i;
      EXPECT_TRUE(boxes_bitwise_eq(batched[i].network_input, scalar.network_input)) << i;
      EXPECT_TRUE(boxes_bitwise_eq(batched[i].network_output, scalar.network_output)) << i;
    }
  }
}

TEST(ControllerBatch, BaseDefaultLoopsScalarStep) {
  const NeuralController ctrl = make_controller(NnDomain::kSymbolic, NnCacheMode::kOff, 950);
  Rng rng(951);
  std::vector<Box> states;
  std::vector<std::size_t> commands;
  for (int k = 0; k < 5; ++k) {
    states.push_back(random_box(rng, 3));
    commands.push_back(static_cast<std::size_t>(rng.uniform_int(0, 3)));
  }
  // Call the base-class default explicitly through a Controller reference
  // bound to a wrapper that does not override the batch entry point.
  class Wrapper final : public Controller {
   public:
    explicit Wrapper(const NeuralController& inner) : inner_(inner) {}
    [[nodiscard]] const CommandSet& commands() const override { return inner_.commands(); }
    [[nodiscard]] std::size_t state_dim() const override { return inner_.state_dim(); }
    [[nodiscard]] std::size_t step(const Vec& state, std::size_t prev) const override {
      return inner_.step(state, prev);
    }
    [[nodiscard]] AbstractControlStep step_abstract(const Box& state,
                                                    std::size_t prev) const override {
      return inner_.step_abstract(state, prev);
    }

   private:
    const NeuralController& inner_;
  };
  const Wrapper wrapper(ctrl);
  const std::vector<AbstractState> abstract_states(states.begin(), states.end());
  const std::vector<AbstractControlStep> batched =
      wrapper.step_abstract_batch(abstract_states, commands);
  ASSERT_EQ(batched.size(), states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    const AbstractControlStep scalar = ctrl.step_abstract(states[i], commands[i]);
    EXPECT_EQ(batched[i].commands, scalar.commands);
    EXPECT_TRUE(boxes_bitwise_eq(batched[i].network_output, scalar.network_output));
  }
  EXPECT_THROW((void)wrapper.step_abstract_batch(abstract_states, {0}), std::invalid_argument);
}

}  // namespace
}  // namespace nncs
