// Tests for the multi-agent ProductController (paper §8 extension): the
// cross-product command set, λ-style index split/join, concrete composition
// and the abstract-contains-concrete soundness property.

#include <gtest/gtest.h>

#include <memory>

#include "core/product_controller.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

/// Single-network controller: y = (x0, c) so command 1 is selected iff
/// x0 > c (argmin picks the smaller score).
std::unique_ptr<NeuralController> threshold_net_controller(double c) {
  Network net = make_zero_network({1, 2});
  net.layer(0).weights(0, 0) = 1.0;
  net.layer(0).biases[1] = c;
  std::vector<Network> nets;
  nets.push_back(std::move(net));
  return std::make_unique<NeuralController>(
      CommandSet({Vec{0.0}, Vec{1.0}}), std::move(nets), std::vector<std::size_t>{0, 0},
      std::make_unique<IdentityPre>(1), std::make_unique<ArgminPost>());
}

/// View selecting one coordinate of a 2-dimensional global state.
StateView coordinate_view(std::size_t idx) {
  return StateView{[idx](const Vec& s) { return Vec{s[idx]}; },
                   [idx](const Box& b) { return Box{b[idx]}; }};
}

struct Fixture {
  std::unique_ptr<NeuralController> a = threshold_net_controller(0.5);
  std::unique_ptr<NeuralController> b = threshold_net_controller(-0.5);
  ProductController product{*a, *b, coordinate_view(0), coordinate_view(1), 2};
};

TEST(ProductController, CommandSetIsCrossProduct) {
  Fixture f;
  ASSERT_EQ(f.product.commands().size(), 4u);
  EXPECT_EQ(f.product.commands().dim(), 2u);
  // index = ia * |Ub| + ib; values are concatenated.
  EXPECT_EQ(f.product.commands()[0], (Vec{0.0, 0.0}));
  EXPECT_EQ(f.product.commands()[1], (Vec{0.0, 1.0}));
  EXPECT_EQ(f.product.commands()[2], (Vec{1.0, 0.0}));
  EXPECT_EQ(f.product.commands()[3], (Vec{1.0, 1.0}));
}

TEST(ProductController, SplitJoinRoundTrip) {
  Fixture f;
  for (std::size_t ia = 0; ia < 2; ++ia) {
    for (std::size_t ib = 0; ib < 2; ++ib) {
      const std::size_t joined = f.product.join_command(ia, ib);
      const auto [sa, sb] = f.product.split_command(joined);
      EXPECT_EQ(sa, ia);
      EXPECT_EQ(sb, ib);
    }
  }
  EXPECT_THROW(f.product.split_command(99), std::out_of_range);
}

TEST(ProductController, ConcreteStepComposesComponents) {
  Fixture f;
  // Global state (x0, x1): agent a sees x0 (threshold 0.5), b sees x1
  // (threshold -0.5).
  EXPECT_EQ(f.product.step(Vec{0.0, 0.0}, 0),
            f.product.join_command(f.a->step(Vec{0.0}, 0), f.b->step(Vec{0.0}, 0)));
  EXPECT_EQ(f.product.step(Vec{1.0, -1.0}, 0),
            f.product.join_command(1, 0));  // x0 > 0.5 -> 1; x1 < -0.5 -> 0
  EXPECT_EQ(f.product.step(Vec{0.0, 0.0}, 0), f.product.join_command(0, 1));
}

TEST(ProductController, AbstractStepIsProductOfCandidates) {
  Fixture f;
  // x0 in [-1, 0] -> agent a certainly picks 0; x1 in [0, 1] -> agent b
  // certainly picks 1: exactly one product command.
  const auto clean = f.product.step_abstract(Box{Interval{-1.0, 0.0}, Interval{0.0, 1.0}}, 0);
  ASSERT_EQ(clean.commands.size(), 1u);
  EXPECT_EQ(clean.commands[0], f.product.join_command(0, 1));
  // x0 straddling 0.5 and x1 straddling -0.5: 2 x 2 candidates.
  const auto mixed =
      f.product.step_abstract(Box{Interval{0.0, 1.0}, Interval{-1.0, 0.0}}, 0);
  EXPECT_EQ(mixed.commands.size(), 4u);
}

TEST(ProductController, ValidatesViews) {
  Fixture f;
  StateView broken;  // empty functions
  EXPECT_THROW(ProductController(*f.a, *f.b, broken, coordinate_view(1), 2),
               std::invalid_argument);
}

// Soundness property: the concrete product command is always inside the
// abstract candidate set, for random thresholds and boxes.
TEST(ProductControllerProperty, ConcreteInAbstract) {
  Rng rng(321);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = threshold_net_controller(rng.uniform(-1.0, 1.0));
    const auto b = threshold_net_controller(rng.uniform(-1.0, 1.0));
    const ProductController product(*a, *b, coordinate_view(0), coordinate_view(1), 2);
    for (int box_trial = 0; box_trial < 10; ++box_trial) {
      const double lo0 = rng.uniform(-2.0, 2.0);
      const double lo1 = rng.uniform(-2.0, 2.0);
      const Box box{Interval{lo0, lo0 + 0.5}, Interval{lo1, lo1 + 0.5}};
      for (std::size_t prev = 0; prev < product.commands().size(); ++prev) {
        const auto abstract = product.step_abstract(box, prev);
        for (int s = 0; s < 10; ++s) {
          const Vec state{rng.uniform(box[0].lo(), box[0].hi()),
                          rng.uniform(box[1].lo(), box[1].hi())};
          const std::size_t chosen = product.step(state, prev);
          ASSERT_NE(std::find(abstract.commands.begin(), abstract.commands.end(), chosen),
                    abstract.commands.end());
        }
      }
    }
  }
}

TEST(IdentityView, PassesThrough) {
  const StateView id = identity_view();
  EXPECT_EQ(id.concrete(Vec{1.0, 2.0}), (Vec{1.0, 2.0}));
  const Box b{Interval{0.0, 1.0}};
  EXPECT_EQ(id.abstract(b), b);
}

}  // namespace
}  // namespace nncs
