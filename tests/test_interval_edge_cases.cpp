// Edge-case torture tests for the interval substrate: infinities,
// denormals, huge magnitudes, degenerate intervals and the exact-identity
// shortcuts — the regimes where naive rounding code breaks soundness.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "interval/interval.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTiny = std::numeric_limits<double>::denorm_min();
constexpr double kMax = std::numeric_limits<double>::max();

TEST(IntervalEdge, ArithmeticWithInfiniteBounds) {
  const Interval half_line(0.0, kInf);
  const Interval sum = half_line + Interval(1.0, 2.0);
  EXPECT_EQ(sum.hi(), kInf);
  EXPECT_LE(sum.lo(), 1.0);
  const Interval diff = Interval(0.0, 1.0) - half_line;
  EXPECT_EQ(diff.lo(), -kInf);
}

TEST(IntervalEdge, EntireTimesFiniteStaysSound) {
  const Interval product = Interval::entire() * Interval(2.0, 3.0);
  EXPECT_EQ(product.lo(), -kInf);
  EXPECT_EQ(product.hi(), kInf);
}

TEST(IntervalEdge, ZeroTimesEntireIsHandled) {
  // The 0 * inf corner is NaN in raw IEEE; the interval convention maps it
  // to 0 (a zero factor annihilates).
  const Interval z = Interval{0.0} * Interval::entire();
  EXPECT_TRUE(z.is_finite());
  EXPECT_TRUE(z.contains(0.0));
}

TEST(IntervalEdge, DenormalWidths) {
  const Interval tiny(0.0, kTiny);
  EXPECT_GE(tiny.width(), kTiny);
  const Interval sum = tiny + tiny;
  EXPECT_TRUE(sum.contains(2.0 * kTiny));
  EXPECT_TRUE(sqr(tiny).contains(0.0));  // underflows to 0, lower bound holds
}

TEST(IntervalEdge, HugeMagnitudesDoNotOverflowSilently) {
  const Interval big(kMax / 2.0, kMax);
  const Interval doubled = big + big;
  EXPECT_EQ(doubled.hi(), kInf);  // overflow becomes +inf: sound
  EXPECT_TRUE(doubled.contains(kMax));
}

TEST(IntervalEdge, ExactIdentityShortcuts) {
  const Interval x(0.3, 0.7);
  // *1 and *0 must be exact (no 1-ulp widening) — pow/NN code relies on it.
  EXPECT_EQ(x * Interval{1.0}, x);
  EXPECT_EQ(Interval{1.0} * x, x);
  const Interval z = x * Interval{0.0};
  EXPECT_EQ(z.lo(), 0.0);
  EXPECT_EQ(z.hi(), 0.0);
}

TEST(IntervalEdge, DegenerateArithmeticStaysNearlyDegenerate) {
  const Interval p(0.1);
  const Interval q = p + p - p;
  EXPECT_TRUE(q.contains(0.1));
  EXPECT_LT(q.width(), 1e-15);
}

TEST(IntervalEdge, NextafterDirectionAtZero) {
  // Crossing zero must widen in the right direction.
  const Interval a(-kTiny, kTiny);
  const Interval b = a + Interval{0.0};
  EXPECT_LE(b.lo(), -kTiny);
  EXPECT_GE(b.hi(), kTiny);
}

TEST(IntervalEdge, SqrtOfDegenerateZero) {
  const Interval r = sqrt(Interval{0.0});
  EXPECT_EQ(r.lo(), 0.0);
  EXPECT_GE(r.hi(), 0.0);
  EXPECT_LT(r.hi(), 1e-300);
}

TEST(IntervalEdge, TrigAtExactMultiplesOfPi) {
  // sin near 0/pi and cos near pi/2: values are ~1e-16; enclosures must
  // contain the true 0 crossing direction conservatively.
  EXPECT_TRUE(sin(Interval{0.0}).contains(0.0));
  const double pi = std::numbers::pi;
  EXPECT_TRUE(sin(Interval{pi}).contains(std::sin(pi)));
  EXPECT_TRUE(cos(Interval{pi / 2.0}).contains(std::cos(pi / 2.0)));
}

TEST(IntervalEdge, HullAndIntersectWithInfinities) {
  const Interval h = hull(Interval(0.0, kInf), Interval(-kInf, -1.0));
  EXPECT_EQ(h.lo(), -kInf);
  EXPECT_EQ(h.hi(), kInf);
  const auto meet = intersect(Interval(0.0, kInf), Interval(-kInf, 5.0));
  ASSERT_TRUE(meet.has_value());
  EXPECT_EQ(meet->lo(), 0.0);
  EXPECT_EQ(meet->hi(), 5.0);
}

TEST(IntervalEdge, MagAndRadWithInfinity) {
  const Interval x(-kInf, 3.0);
  EXPECT_EQ(x.mag(), kInf);
  EXPECT_EQ(x.width(), kInf);
}

// Property: repeated accumulation keeps containment despite million-fold
// rounding (the drift must be outward only).
TEST(IntervalEdgeProperty, LongAccumulationStaysSound) {
  Rng rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    Interval acc{0.0};
    double truth = 0.0;
    for (int i = 0; i < 100000; ++i) {
      const double v = rng.uniform(-1.0, 1.0);
      acc += Interval{v};
      truth += v;
    }
    ASSERT_TRUE(acc.contains(truth));
    // And the widening stays tame (~1e5 ulps of the running magnitude).
    ASSERT_LT(acc.width(), 1e-8);
  }
}

// Property: interval multiplication chain containment under random signs.
TEST(IntervalEdgeProperty, ProductChainContainment) {
  Rng rng(405);
  for (int trial = 0; trial < 100; ++trial) {
    Interval acc{1.0};
    double truth = 1.0;
    for (int i = 0; i < 30; ++i) {
      const double v = rng.uniform(-1.5, 1.5);
      acc = acc * Interval{v};
      truth *= v;
    }
    ASSERT_TRUE(acc.contains(truth));
  }
}

}  // namespace
}  // namespace nncs
