// Tests for the symbolic (affine-bound) abstract transformer: ReLU
// relaxation cases, the containment property, the tightness advantage over
// plain intervals, and the symbolic output-difference.

#include <gtest/gtest.h>

#include "nn/interval_prop.hpp"
#include "nn/symbolic_prop.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

Network random_network(std::uint64_t seed, std::vector<std::size_t> sizes) {
  Rng rng(seed);
  Network net = make_zero_network(sizes);
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    for (double& w : net.layer(li).weights.data()) {
      w = rng.uniform(-1.5, 1.5);
    }
    for (double& b : net.layer(li).biases) {
      b = rng.uniform(-0.5, 0.5);
    }
  }
  return net;
}

TEST(SymbolicProp, AffineNetworkIsExact) {
  // y = x0 - x1: symbolic bounds keep the dependency, so over the box
  // x0 = x1 = [0,1] the *difference form* y = x0 - x1 has exact range [-1,1],
  // and for input x0 in [0,1], x1 = x0 (same var twice is impossible here,
  // so check the form coefficients instead).
  Network net = make_zero_network({2, 1});
  net.layer(0).weights(0, 0) = 1.0;
  net.layer(0).weights(0, 1) = -1.0;
  const auto bounds = symbolic_propagate(net, Box(2, Interval{0.0, 1.0}));
  ASSERT_EQ(bounds.outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(bounds.outputs[0].lower.coeffs[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds.outputs[0].lower.coeffs[1], -1.0);
  EXPECT_DOUBLE_EQ(bounds.outputs[0].upper.coeffs[0], 1.0);
  EXPECT_NEAR(bounds.output_box[0].lo(), -1.0, 1e-6);
  EXPECT_NEAR(bounds.output_box[0].hi(), 1.0, 1e-6);
}

TEST(SymbolicProp, StableActiveReluKeepsForms) {
  // hidden = relu(x + 2) with x in [0,1]: always active -> identity-ish.
  Network net = make_zero_network({1, 1, 1});
  net.layer(0).weights(0, 0) = 1.0;
  net.layer(0).biases[0] = 2.0;
  net.layer(1).weights(0, 0) = 1.0;
  const auto bounds = symbolic_propagate(net, Box{Interval{0.0, 1.0}});
  EXPECT_NEAR(bounds.output_box[0].lo(), 2.0, 1e-6);
  EXPECT_NEAR(bounds.output_box[0].hi(), 3.0, 1e-6);
}

TEST(SymbolicProp, StableInactiveReluZeroes) {
  // hidden = relu(x - 5) with x in [0,1]: always inactive -> output 0.
  Network net = make_zero_network({1, 1, 1});
  net.layer(0).weights(0, 0) = 1.0;
  net.layer(0).biases[0] = -5.0;
  net.layer(1).weights(0, 0) = 3.0;
  net.layer(1).biases[0] = 0.5;
  const auto bounds = symbolic_propagate(net, Box{Interval{0.0, 1.0}});
  EXPECT_NEAR(bounds.output_box[0].lo(), 0.5, 1e-6);
  EXPECT_NEAR(bounds.output_box[0].hi(), 0.5, 1e-6);
}

TEST(SymbolicProp, UnstableReluChordIsSound) {
  // hidden = relu(x), x in [-1, 1]: chord upper = (x+1)/2, lower alpha in
  // {0, 1}. Output = hidden.
  Network net = make_zero_network({1, 1, 1});
  net.layer(0).weights(0, 0) = 1.0;
  net.layer(1).weights(0, 0) = 1.0;
  const auto bounds = symbolic_propagate(net, Box{Interval{-1.0, 1.0}});
  // True range of relu(x) is [0, 1]; relaxation may widen but not shrink.
  EXPECT_LE(bounds.output_box[0].lo(), 0.0 + 1e-9);
  EXPECT_GE(bounds.output_box[0].hi(), 1.0 - 1e-9);
  for (double x = -1.0; x <= 1.0; x += 0.1) {
    const double y = std::max(0.0, x);
    EXPECT_TRUE(bounds.output_box[0].contains(y));
  }
}

TEST(SymbolicProp, RejectsDimensionMismatch) {
  const Network net = random_network(1, {3, 4, 2});
  EXPECT_THROW(symbolic_propagate(net, Box{Interval{0.0, 1.0}}), std::invalid_argument);
}

TEST(SymbolicProp, TighterThanIntervalOnTrainedNetworks) {
  // The dependency problem makes plain intervals blow up with depth, while
  // symbolic bounds track it — on *trained* networks, whose ReLU pattern is
  // mostly stable. (Zero-bias random nets probed at zero-centered boxes put
  // every ReLU in the maximally-unstable symmetric regime, a known
  // pathological case where the relaxation gap can exceed the interval
  // clamp; that is not the operating regime of this library.)
  Dataset data;
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Vec{x0, x1}, Vec{std::fabs(x0) + 0.5 * x1 * x1, x0 * x1});
  }
  TrainerConfig tc;
  tc.hidden = {20, 20, 20};
  tc.epochs = 60;
  const Network net = Trainer(tc).train(data, 2, 2);

  double sym_total = 0.0;
  double int_total = 0.0;
  Rng boxes(5);
  for (int trial = 0; trial < 30; ++trial) {
    const double lo0 = boxes.uniform(-1.0, 0.8);
    const double lo1 = boxes.uniform(-1.0, 0.8);
    const Box input{Interval{lo0, lo0 + 0.2}, Interval{lo1, lo1 + 0.2}};
    const Box sym = symbolic_propagate(net, input).output_box;
    const Box itv = interval_propagate(net, input);
    for (std::size_t j = 0; j < 2; ++j) {
      sym_total += sym[j].width();
      int_total += itv[j].width();
    }
  }
  EXPECT_LT(sym_total, int_total * 0.5) << "symbolic should be distinctly tighter";
}

TEST(SymbolicProp, ConcretizeAffineForm) {
  const AffineForm form{Vec{2.0, -1.0}, 0.5};
  const Interval v = concretize(form, Box{Interval{0.0, 1.0}, Interval{0.0, 2.0}});
  EXPECT_LE(v.lo(), -1.5 + 1e-9);
  EXPECT_GE(v.hi(), 2.5 - 1e-9);
}

TEST(SymbolicProp, ConcretizeOutputBoxHullsCrossedBounds) {
  // Regression: when accumulated relaxation error makes the concretized
  // lower bound exceed the concretized upper bound, the output box used to
  // silently swap min/max and produce an interval that *excludes* the true
  // range. Crossed bounds must fall back to the hull of both concretized
  // intervals.
  NeuronBounds nb;
  nb.lower = AffineForm{Vec{4.0}, 8.0, 0.0};   // over [-1,1]: [4, 12]
  nb.upper = AffineForm{Vec{4.0}, -1.0, 0.0};  // over [-1,1]: [-5, 3] — crossed
  const Box input{Interval{-1.0, 1.0}};
  const Box out = concretize_output_box({nb}, input);
  ASSERT_EQ(out.dim(), 1u);
  // Hull of [4,12] and [-5,3] (concretize adds a whisker of inflation).
  EXPECT_LE(out[0].lo(), -5.0);
  EXPECT_GE(out[0].hi(), 12.0);
}

TEST(SymbolicProp, ConcretizeOutputBoxMatchesPropagatedBox) {
  // For a well-behaved (non-crossed) network the helper must agree with the
  // box symbolic_propagate records.
  const Network net = random_network(42, {2, 3, 2});
  const Box input(2, Interval{-1.0, 1.0});
  const auto bounds = symbolic_propagate(net, input);
  EXPECT_EQ(concretize_output_box(bounds.outputs, input), bounds.output_box);
}

TEST(SymbolicProp, OutputDifferenceTighterThanBoxDifference) {
  // Two outputs sharing a large common term: y0 = h + x0, y1 = h + x1 where
  // h is a big shared hidden value. Box subtraction loses the cancellation.
  Network net = make_zero_network({2, 1, 2});
  net.layer(0).weights(0, 0) = 10.0;  // h = relu(10 x0)
  net.layer(1).weights(0, 0) = 1.0;   // y0 = h
  net.layer(1).weights(1, 0) = 1.0;   // y1 = h + small bias
  net.layer(1).biases[1] = 0.1;
  const Box input(2, Interval{0.5, 1.5});
  const auto bounds = symbolic_propagate(net, input);
  const Interval diff = output_difference(bounds, 0, 1);
  // Truth: y0 - y1 = -0.1 exactly.
  EXPECT_TRUE(diff.contains(-0.1));
  EXPECT_LT(diff.width(), 0.5);
  const Interval box_diff = bounds.output_box[0] - bounds.output_box[1];
  EXPECT_GT(box_diff.width(), diff.width());
  EXPECT_THROW(output_difference(bounds, 0, 5), std::out_of_range);
}

// Containment property sweep over network shapes.
class SymbolicPropContainment
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(SymbolicPropContainment, RandomBoxesContainSampledOutputs) {
  const auto sizes = GetParam();
  Rng rng(88);
  for (int net_trial = 0; net_trial < 5; ++net_trial) {
    const Network net = random_network(300 + net_trial, sizes);
    for (int box_trial = 0; box_trial < 10; ++box_trial) {
      std::vector<Interval> dims;
      for (std::size_t d = 0; d < sizes.front(); ++d) {
        const double lo = rng.uniform(-2.0, 2.0);
        dims.emplace_back(lo, lo + rng.uniform(0.0, 1.0));
      }
      const Box input{dims};
      const auto bounds = symbolic_propagate(net, input);
      for (int s = 0; s < 20; ++s) {
        Vec x(sizes.front());
        for (std::size_t d = 0; d < x.size(); ++d) {
          x[d] = rng.uniform(input[d].lo(), input[d].hi());
        }
        const Vec y = net.eval(x);
        for (std::size_t j = 0; j < y.size(); ++j) {
          ASSERT_TRUE(bounds.output_box[j].contains(y[j]))
              << "output " << j << " = " << y[j] << " not in "
              << bounds.output_box[j].str();
          // The affine bounds themselves must bracket the concrete value.
          ASSERT_LE(concretize(bounds.outputs[j].lower, Box::from_point(x)).lo(),
                    y[j] + 1e-6);
          ASSERT_GE(concretize(bounds.outputs[j].upper, Box::from_point(x)).hi(),
                    y[j] - 1e-6);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SymbolicPropContainment,
                         ::testing::Values(std::vector<std::size_t>{1, 4, 1},
                                           std::vector<std::size_t>{2, 8, 8, 2},
                                           std::vector<std::size_t>{3, 16, 16, 16, 5},
                                           std::vector<std::size_t>{5, 32, 32, 5}));

}  // namespace
}  // namespace nncs
