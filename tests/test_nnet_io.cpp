// Round-trip and error-handling tests for the network text serialization.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "nn/nnet_io.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

Network random_network(std::uint64_t seed) {
  Rng rng(seed);
  Network net = make_zero_network({3, 7, 5, 2});
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    for (double& w : net.layer(li).weights.data()) {
      w = rng.uniform(-2.0, 2.0);
    }
    for (double& b : net.layer(li).biases) {
      b = rng.uniform(-1.0, 1.0);
    }
  }
  return net;
}

TEST(NnetIo, RoundTripIsBitExact) {
  const Network original = random_network(5);
  std::stringstream buffer;
  save_network(original, buffer);
  const Network loaded = load_network(buffer);
  ASSERT_EQ(loaded.num_layers(), original.num_layers());
  for (std::size_t li = 0; li < original.num_layers(); ++li) {
    EXPECT_EQ(loaded.layers()[li].weights, original.layers()[li].weights);
    EXPECT_EQ(loaded.layers()[li].biases, original.layers()[li].biases);
  }
}

TEST(NnetIo, RoundTripPreservesEvaluation) {
  const Network original = random_network(6);
  std::stringstream buffer;
  save_network(original, buffer);
  const Network loaded = load_network(buffer);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Vec x{rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
    EXPECT_EQ(original.eval(x), loaded.eval(x));
  }
}

TEST(NnetIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "nncs_test_net.nnet";
  const Network original = random_network(8);
  save_network(original, path);
  const Network loaded = load_network(path);
  EXPECT_EQ(loaded.layer_sizes(), original.layer_sizes());
  std::filesystem::remove(path);
}

TEST(NnetIo, MissingFileThrows) {
  EXPECT_THROW(load_network(std::filesystem::path{"/nonexistent/net.nnet"}), std::runtime_error);
}

TEST(NnetIo, BadMagicThrows) {
  std::stringstream buffer("WRONG 1\nlayers 2\n");
  EXPECT_THROW(load_network(buffer), NnetFormatError);
}

TEST(NnetIo, BadVersionThrows) {
  std::stringstream buffer("NNCS-NET 99\n");
  EXPECT_THROW(load_network(buffer), NnetFormatError);
}

TEST(NnetIo, TruncatedInputThrows) {
  const Network original = random_network(9);
  std::stringstream buffer;
  save_network(original, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_network(truncated), NnetFormatError);
}

TEST(NnetIo, GarbageWhereNumberExpectedThrows) {
  std::stringstream buffer("NNCS-NET 1\nlayers 2\nsizes 1 1\nbias xyz\n");
  EXPECT_THROW(load_network(buffer), NnetFormatError);
}

TEST(NnetIo, SingleLayerNetwork) {
  Network net = make_zero_network({4, 3});
  net.layer(0).weights(2, 1) = -0.125;  // exactly representable
  std::stringstream buffer;
  save_network(net, buffer);
  const Network loaded = load_network(buffer);
  EXPECT_EQ(loaded.layers()[0].weights(2, 1), -0.125);
}

}  // namespace
}  // namespace nncs
