// Closed-form cross-checks of the validated integrator on linear systems
// x' = A x + B u, where the exact flow e^{At} is known analytically —
// containment sweeps across several (A, B) pairs plus a convergence-order
// check of the Taylor scheme (local error ~ h^{K+1}).

#include <gtest/gtest.h>

#include <cmath>

#include "ode/concrete_integrator.hpp"
#include "ode/dynamics.hpp"
#include "ode/validated_integrator.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

/// Generic 2x2 linear field: out = A s + B u (single scalar command).
struct LinearField {
  double a11, a12, a21, a22, b1, b2;
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = Interval{a11} * s[0] + Interval{a12} * s[1] + Interval{b1} * u[0];
    out[1] = Interval{a21} * s[0] + Interval{a22} * s[1] + Interval{b2} * u[0];
  }
  void operator()(std::span<const double> s, std::span<const double> u,
                  std::span<double> out) const {
    out[0] = a11 * s[0] + a12 * s[1] + b1 * u[0];
    out[1] = a21 * s[0] + a22 * s[1] + b2 * u[0];
  }
};

struct LinearCase {
  const char* name;
  LinearField field;
  double period;
  int steps;
  double u;
};

class LinearFlowContainment : public ::testing::TestWithParam<LinearCase> {};

/// Reference flow via very fine RK4 (error ~ 1e-12, far below enclosure
/// widths).
Vec reference_flow(const Dynamics& f, const Vec& s0, double u, double t) {
  return rk4_integrate(f, s0, Vec{u}, t, 2000);
}

TEST_P(LinearFlowContainment, ClosedFormExtremesInsideEnclosure) {
  const LinearCase& c = GetParam();
  const auto f = make_dynamics(2, 1, c.field);
  const Box s0{Interval{0.8, 1.2}, Interval{-0.6, -0.2}};
  const TaylorIntegrator integrator;
  const Flowpipe pipe = simulate(*f, integrator, s0, Vec{c.u}, c.period, c.steps);
  ASSERT_TRUE(pipe.ok) << c.name;

  // Linear flows map boxes to parallelograms whose extreme points are
  // images of the box corners: all four corner flows must be inside the end
  // enclosure, and so must random interior points. Corner images can land
  // exactly on the enclosure boundary, so allow the RK4 reference its own
  // ~1e-12 roundoff.
  const Box end_box = pipe.end.inflated(1e-9);
  Rng rng(808);
  for (const double x0 : {0.8, 1.2}) {
    for (const double v0 : {-0.6, -0.2}) {
      const Vec end = reference_flow(*f, Vec{x0, v0}, c.u, c.period);
      ASSERT_TRUE(end_box.contains(end)) << c.name << " corner (" << x0 << "," << v0 << ")";
    }
  }
  for (int trial = 0; trial < 30; ++trial) {
    const Vec start{rng.uniform(0.8, 1.2), rng.uniform(-0.6, -0.2)};
    const Vec end = reference_flow(*f, start, c.u, c.period);
    ASSERT_TRUE(end_box.contains(end)) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Systems, LinearFlowContainment,
    ::testing::Values(
        LinearCase{"double_integrator", {0, 1, 0, 0, 0, 1}, 1.0, 8, -0.5},
        LinearCase{"stable_node", {-1, 0, 0, -2, 1, 0}, 1.0, 8, 0.3},
        LinearCase{"spiral", {-0.2, 1, -1, -0.2, 0, 1}, 1.0, 16, 0.0},
        LinearCase{"saddle", {0.5, 0, 0, -0.5, 1, 1}, 0.5, 8, 0.1},
        LinearCase{"shear", {0, 2, 0, 0, 0, 0}, 1.0, 4, 0.0},
        LinearCase{"rotation_fast", {0, 3, -3, 0, 0, 0}, 1.0, 32, 0.0}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(TaylorConvergence, LocalErrorDropsWithOrder) {
  // On the spiral system, the end-box width from a *degenerate* initial
  // point isolates the method error; it must shrink rapidly with the Taylor
  // order until the rounding floor.
  const auto f = make_dynamics(2, 1, LinearField{-0.2, 1.0, -1.0, -0.2, 0.0, 0.0});
  const Box point{Interval{1.0}, Interval{0.0}};
  double first = 0.0;
  double previous = 1e300;
  for (const int order : {1, 2, 3, 4}) {
    const TaylorIntegrator integrator(TaylorIntegrator::Config{order, {}});
    const auto step = integrator.step(*f, point, Vec{0.0}, 0.25);
    ASSERT_TRUE(step.has_value());
    const double width = step->end.max_width();
    EXPECT_LT(width, previous);
    if (order == 1) {
      first = width;
    }
    previous = width;
  }
  // Orders of magnitude between order 1 and order 4 (the remainder is
  // evaluated over the a-priori enclosure, so it floors around h^5 * rad(B)
  // rather than machine precision).
  EXPECT_LT(previous, 1e-3);
  EXPECT_GT(first / previous, 100.0);
}

TEST(TaylorConvergence, StepHalvingMatchesOrder) {
  // Halving h should shrink the one-step error by ~2^{K+1} for order K
  // (allowing generous slack for the enclosure seams).
  const auto f = make_dynamics(2, 1, LinearField{-0.2, 1.0, -1.0, -0.2, 0.0, 0.0});
  const Box point{Interval{1.0}, Interval{0.0}};
  const TaylorIntegrator integrator(TaylorIntegrator::Config{2, {}});
  const auto coarse = integrator.step(*f, point, Vec{0.0}, 0.2);
  const auto fine = integrator.step(*f, point, Vec{0.0}, 0.1);
  ASSERT_TRUE(coarse.has_value());
  ASSERT_TRUE(fine.has_value());
  const double ratio = coarse->end.max_width() / fine->end.max_width();
  EXPECT_GT(ratio, 4.0);  // at least ~2^2; theory says ~2^3
}

}  // namespace
}  // namespace nncs
