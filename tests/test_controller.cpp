// Tests for the generic neural controller model: CommandSet, pre/post
// processors, λ selection, and the concrete/abstract consistency property
// (every concretely selected command appears in the abstract result).

#include <gtest/gtest.h>

#include <memory>

#include "core/controller.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

TEST(CommandSet, ValidatesShape) {
  EXPECT_THROW(CommandSet{std::vector<Vec>{}}, std::invalid_argument);
  EXPECT_THROW(CommandSet{std::vector<Vec>{Vec{}}}, std::invalid_argument);
  EXPECT_THROW(CommandSet(std::vector<Vec>{Vec{1.0}, Vec{1.0, 2.0}}), std::invalid_argument);
  const CommandSet u({Vec{1.0}, Vec{-1.0}});
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u.dim(), 1u);
  EXPECT_EQ(u[1][0], -1.0);
}

TEST(IdentityPre, PassesThrough) {
  const IdentityPre pre(3);
  EXPECT_EQ(pre.input_dim(), 3u);
  EXPECT_EQ(pre.eval(Vec{1.0, 2.0, 3.0}), (Vec{1.0, 2.0, 3.0}));
  const Box b(3, Interval{0.0, 1.0});
  EXPECT_EQ(pre.eval_abstract(b), b);
}

TEST(ArgminPost, ConcreteAndAbstract) {
  const ArgminPost post;
  EXPECT_EQ(post.eval(Vec{3.0, 1.0, 2.0}), 1u);
  const auto candidates = post.eval_abstract(Box{Interval{0.0, 1.0}, Interval{2.0, 3.0}});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 0u);
}

/// A controller with two networks computing y = (x, c) for constants so the
/// winning command is fully predictable: network 0 -> y = (x0, 0.5),
/// network 1 -> y = (x0, -0.5).
NeuralController make_test_controller(NnDomain domain = NnDomain::kSymbolic) {
  std::vector<Network> nets;
  for (const double c : {0.5, -0.5}) {
    Network net = make_zero_network({1, 2});
    net.layer(0).weights(0, 0) = 1.0;
    net.layer(0).biases[1] = c;
    nets.push_back(std::move(net));
  }
  return NeuralController(CommandSet({Vec{0.0}, Vec{1.0}}), std::move(nets), {0, 1},
                          std::make_unique<IdentityPre>(1), std::make_unique<ArgminPost>(),
                          domain);
}

TEST(NeuralController, LambdaSelectsNetworkByPreviousCommand) {
  const NeuralController ctrl = make_test_controller();
  // prev command 0 -> network 0 -> y = (x, 0.5): for x = 0, argmin = 0.
  EXPECT_EQ(ctrl.step(Vec{0.0}, 0), 0u);
  // for x = 1, argmin = 1 (0.5 < 1).
  EXPECT_EQ(ctrl.step(Vec{1.0}, 0), 1u);
  // prev command 1 -> network 1 -> y = (x, -0.5): argmin 1 for x = 0.
  EXPECT_EQ(ctrl.step(Vec{0.0}, 1), 1u);
  EXPECT_EQ(ctrl.step(Vec{-1.0}, 1), 0u);
}

TEST(NeuralController, AbstractStepSeparatesCleanRegions) {
  const NeuralController ctrl = make_test_controller();
  // x in [-2, -1] with network 0: y0 in [-2,-1] < 0.5 -> only command 0.
  const auto step = ctrl.step_abstract(Box{Interval{-2.0, -1.0}}, 0);
  ASSERT_EQ(step.commands.size(), 1u);
  EXPECT_EQ(step.commands[0], 0u);
  EXPECT_TRUE(step.network_input[0].contains(-1.5));
  EXPECT_TRUE(step.network_output[0].contains(-1.5));
}

TEST(NeuralController, AbstractStepKeepsBothOnBoundary) {
  const NeuralController ctrl = make_test_controller();
  // x in [0, 1] with network 0: y0 in [0,1] straddles 0.5 -> both commands.
  const auto step = ctrl.step_abstract(Box{Interval{0.0, 1.0}}, 0);
  EXPECT_EQ(step.commands.size(), 2u);
}

TEST(NeuralController, IntervalDomainAlsoSound) {
  const NeuralController ctrl = make_test_controller(NnDomain::kInterval);
  const auto step = ctrl.step_abstract(Box{Interval{-2.0, -1.0}}, 0);
  ASSERT_EQ(step.commands.size(), 1u);
  EXPECT_EQ(step.commands[0], 0u);
}

TEST(NeuralController, ValidatesConstruction) {
  auto make = [](std::vector<std::size_t> selector, std::size_t pre_dim) {
    std::vector<Network> nets;
    nets.push_back(make_zero_network({1, 2}));
    return NeuralController(CommandSet({Vec{0.0}, Vec{1.0}}), std::move(nets),
                            std::move(selector), std::make_unique<IdentityPre>(pre_dim),
                            std::make_unique<ArgminPost>());
  };
  EXPECT_THROW(make({0}, 1), std::invalid_argument);        // selector size != |U|
  EXPECT_THROW(make({0, 7}, 1), std::invalid_argument);     // selector out of range
  EXPECT_THROW(make({0, 0}, 3), std::invalid_argument);     // net input != Pre output
  EXPECT_NO_THROW(make({0, 0}, 1));
}

TEST(NeuralController, StepValidatesCommandIndex) {
  const NeuralController ctrl = make_test_controller();
  EXPECT_THROW(ctrl.step(Vec{0.0}, 7), std::out_of_range);
  EXPECT_THROW(ctrl.step_abstract(Box{Interval{0.0, 1.0}}, 7), std::out_of_range);
}

// Consistency property: for random networks and random boxes, the command
// chosen concretely from any sampled state is contained in the abstract
// command set (this is the controller-level soundness the reachability
// proof relies on).
class ControllerConsistency : public ::testing::TestWithParam<NnDomain> {};

TEST_P(ControllerConsistency, ConcreteCommandAlwaysInAbstractSet) {
  Rng rng(2718);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Network> nets;
    for (int n = 0; n < 3; ++n) {
      Network net = make_zero_network({2, 6, 3});
      for (std::size_t li = 0; li < net.num_layers(); ++li) {
        for (double& w : net.layer(li).weights.data()) {
          w = rng.uniform(-1.0, 1.0);
        }
        for (double& b : net.layer(li).biases) {
          b = rng.uniform(-0.3, 0.3);
        }
      }
      nets.push_back(std::move(net));
    }
    const NeuralController ctrl(CommandSet({Vec{0.0}, Vec{1.0}, Vec{2.0}}), std::move(nets),
                                {0, 1, 2}, std::make_unique<IdentityPre>(2),
                                std::make_unique<ArgminPost>(), GetParam());
    for (int b = 0; b < 10; ++b) {
      const double lo0 = rng.uniform(-1.0, 1.0);
      const double lo1 = rng.uniform(-1.0, 1.0);
      const Box box{Interval{lo0, lo0 + 0.3}, Interval{lo1, lo1 + 0.3}};
      for (std::size_t prev = 0; prev < 3; ++prev) {
        const auto abstract = ctrl.step_abstract(box, prev);
        for (int s = 0; s < 20; ++s) {
          const Vec x{rng.uniform(box[0].lo(), box[0].hi()),
                      rng.uniform(box[1].lo(), box[1].hi())};
          const std::size_t chosen = ctrl.step(x, prev);
          ASSERT_NE(std::find(abstract.commands.begin(), abstract.commands.end(), chosen),
                    abstract.commands.end())
              << "concrete command " << chosen << " missing from abstract set";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, ControllerConsistency,
                         ::testing::Values(NnDomain::kInterval, NnDomain::kSymbolic),
                         [](const auto& info) {
                           return info.param == NnDomain::kInterval ? "interval" : "symbolic";
                         });

}  // namespace
}  // namespace nncs
