// Tests for the validated ODE machinery: Picard a-priori enclosures, the
// interval Taylor-series integrator, the Euler baseline, Algorithm 1
// (simulate) and the RK4 reference — including the soundness property that
// every concretely integrated trajectory stays inside the validated
// enclosures.

#include <gtest/gtest.h>

#include <cmath>

#include "ode/concrete_integrator.hpp"
#include "ode/dynamics.hpp"
#include "ode/validated_integrator.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

/// s' = -s (1-d decay): closed form s(t) = s0 e^{-t}.
struct DecayField {
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = -s[0] + 0.0 * u[0];
  }
};

/// Harmonic oscillator: (x, v)' = (v, -x); command unused.
struct OscillatorField {
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = s[1] + 0.0 * u[0];
    out[1] = -s[0] + 0.0 * u[0];
  }
};

/// Controlled integrator: (p, v)' = (v, u).
struct DoubleIntegratorField {
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = s[1] + 0.0 * s[0];
    out[1] = u[0] + 0.0 * s[1];
  }
};

/// Nonlinear: s' = sin(s) + u.
struct SineField {
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = sin(s[0]) + u[0];
  }
};

TEST(Dynamics, ModelReportsDimensions) {
  const auto f = make_dynamics(2, 1, OscillatorField{});
  EXPECT_EQ(f->state_dim(), 2u);
  EXPECT_EQ(f->command_dim(), 1u);
}

TEST(Dynamics, EvalOnBoxMatchesIntervalEvaluation) {
  const auto f = make_dynamics(2, 1, DoubleIntegratorField{});
  const Box img = eval_on_box(*f, Box{Interval{0.0, 1.0}, Interval{2.0, 3.0}}, Vec{5.0});
  EXPECT_TRUE(img[0].contains(Interval{2.0, 3.0}));
  EXPECT_TRUE(img[1].contains(5.0));
}

TEST(Picard, FindsEnclosureForDecay) {
  const auto f = make_dynamics(1, 1, DecayField{});
  const auto b = picard_enclosure(*f, Box{Interval{1.0, 2.0}}, Vec{0.0}, 0.1);
  ASSERT_TRUE(b.has_value());
  // True solutions stay in [e^{-0.1}, 2].
  EXPECT_TRUE((*b)[0].contains(Interval{std::exp(-0.1), 2.0}));
}

TEST(Picard, RejectsNonPositiveStep) {
  const auto f = make_dynamics(1, 1, DecayField{});
  EXPECT_THROW(picard_enclosure(*f, Box{Interval{1.0}}, Vec{0.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(picard_enclosure(*f, Box{Interval{1.0}}, Vec{0.0}, -1.0), std::invalid_argument);
}

TEST(TaylorIntegrator, RejectsOrderZero) {
  TaylorIntegrator::Config config;
  config.order = 0;
  EXPECT_THROW(TaylorIntegrator{config}, std::invalid_argument);
}

TEST(TaylorIntegrator, DecayStepEnclosesClosedForm) {
  const auto f = make_dynamics(1, 1, DecayField{});
  const TaylorIntegrator integrator;
  const auto step = integrator.step(*f, Box{Interval{1.0, 2.0}}, Vec{0.0}, 0.25);
  ASSERT_TRUE(step.has_value());
  const double lo = std::exp(-0.25) * 1.0;
  const double hi = std::exp(-0.25) * 2.0;
  EXPECT_TRUE(step->end[0].contains(lo));
  EXPECT_TRUE(step->end[0].contains(hi));
  // Box enclosures cannot contract widths (the dependency problem); the
  // natural bound is one factor of e^{L·h} on the initial width.
  EXPECT_LT(step->end[0].width(), 1.0 * std::exp(0.25) * 1.05);
  // Flow contains both endpoints in time.
  EXPECT_TRUE(step->flow[0].contains(2.0));
  EXPECT_TRUE(step->flow[0].contains(lo));
  // End is inside flow.
  EXPECT_TRUE(step->flow.contains(step->end));
}

TEST(TaylorIntegrator, OscillatorQuarterTurn) {
  const auto f = make_dynamics(2, 1, OscillatorField{});
  const TaylorIntegrator integrator(TaylorIntegrator::Config{6, {}});
  Box current{Interval{1.0, 1.0}, Interval{0.0, 0.0}};
  // Integrate to t = pi/2 in 16 steps: (1,0) -> (0,-1).
  const double h = std::numbers::pi / 2.0 / 16.0;
  for (int i = 0; i < 16; ++i) {
    const auto step = integrator.step(*f, current, Vec{0.0}, h);
    ASSERT_TRUE(step.has_value());
    current = step->end;
  }
  EXPECT_TRUE(current[0].contains(0.0));
  EXPECT_TRUE(current[1].contains(-1.0));
  EXPECT_LT(current[0].width(), 1e-6);
}

TEST(TaylorIntegrator, HigherOrderIsTighter) {
  const auto f = make_dynamics(1, 1, SineField{});
  const Box s0{Interval{0.4, 0.5}};
  const TaylorIntegrator low(TaylorIntegrator::Config{1, {}});
  const TaylorIntegrator high(TaylorIntegrator::Config{5, {}});
  const auto step_low = low.step(*f, s0, Vec{0.1}, 0.2);
  const auto step_high = high.step(*f, s0, Vec{0.1}, 0.2);
  ASSERT_TRUE(step_low.has_value());
  ASSERT_TRUE(step_high.has_value());
  EXPECT_LE(step_high->end[0].width(), step_low->end[0].width());
}

TEST(EulerIntegrator, SoundButLooserThanTaylor) {
  const auto f = make_dynamics(1, 1, DecayField{});
  const EulerIntegrator euler;
  const TaylorIntegrator taylor;
  const Box s0{Interval{1.0, 1.1}};
  const auto se = euler.step(*f, s0, Vec{0.0}, 0.1);
  const auto st = taylor.step(*f, s0, Vec{0.0}, 0.1);
  ASSERT_TRUE(se.has_value());
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(se->end[0].contains(std::exp(-0.1)));
  EXPECT_GE(se->end[0].width(), st->end[0].width());
}

TEST(Simulate, FlowpipeHasOneSegmentPerStep) {
  const auto f = make_dynamics(2, 1, DoubleIntegratorField{});
  const TaylorIntegrator integrator;
  const Flowpipe pipe =
      simulate(*f, integrator, Box{Interval{0.0, 1.0}, Interval{1.0, 1.0}}, Vec{0.5}, 1.0, 4);
  EXPECT_TRUE(pipe.ok);
  EXPECT_EQ(pipe.segments.size(), 4u);
  // p(1) = p0 + v0 + u/2 in [1.25, 2.25]; v(1) = 1.5.
  EXPECT_TRUE(pipe.end[0].contains(Interval{1.25, 2.25}));
  EXPECT_TRUE(pipe.end[1].contains(1.5));
  // hull covers start and end
  const Box h = pipe.hull_box();
  EXPECT_TRUE(h[0].contains(0.0));
  EXPECT_TRUE(h[0].contains(2.25));
}

TEST(Simulate, InvalidArgumentsThrow) {
  const auto f = make_dynamics(1, 1, DecayField{});
  const TaylorIntegrator integrator;
  EXPECT_THROW(simulate(*f, integrator, Box{Interval{1.0}}, Vec{0.0}, 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(simulate(*f, integrator, Box{Interval{1.0}}, Vec{0.0}, -1.0, 4),
               std::invalid_argument);
}

TEST(Rk4, MatchesClosedFormDecay) {
  const auto f = make_dynamics(1, 1, DecayField{});
  const Vec s1 = rk4_integrate(*f, Vec{1.0}, Vec{0.0}, 1.0, 100);
  EXPECT_NEAR(s1[0], std::exp(-1.0), 1e-8);
}

TEST(Rk4, TrajectoryHasExpectedShape) {
  const auto f = make_dynamics(2, 1, OscillatorField{});
  const auto traj = rk4_trajectory(*f, Vec{1.0, 0.0}, Vec{0.0}, 2.0 * std::numbers::pi, 200);
  EXPECT_EQ(traj.size(), 201u);
  EXPECT_NEAR(traj.back()[0], 1.0, 1e-6);  // full period returns to start
  EXPECT_NEAR(traj.back()[1], 0.0, 1e-6);
  EXPECT_THROW(rk4_trajectory(*f, Vec{1.0, 0.0}, Vec{0.0}, 1.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Soundness property: RK4 trajectories from sampled initial conditions stay
// inside the validated flowpipe, for several systems and step counts.
// ---------------------------------------------------------------------------

struct SoundnessCase {
  const char* name;
  std::size_t dim;
  double period;
  int steps;
  double u;
  double lo0, hi0, lo1, hi1;  // initial ranges (dim 2 uses both)
  int field;                  // 0=decay 1=osc 2=dblint 3=sine
};

class FlowpipeSoundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(FlowpipeSoundness, ConcreteTrajectoriesStayInside) {
  const auto& c = GetParam();
  std::unique_ptr<Dynamics> f;
  switch (c.field) {
    case 0:
      f = make_dynamics(1, 1, DecayField{});
      break;
    case 1:
      f = make_dynamics(2, 1, OscillatorField{});
      break;
    case 2:
      f = make_dynamics(2, 1, DoubleIntegratorField{});
      break;
    default:
      f = make_dynamics(1, 1, SineField{});
      break;
  }
  Box s0 = c.dim == 1 ? Box{Interval{c.lo0, c.hi0}}
                      : Box{Interval{c.lo0, c.hi0}, Interval{c.lo1, c.hi1}};
  const TaylorIntegrator integrator;
  const Flowpipe pipe = simulate(*f, integrator, s0, Vec{c.u}, c.period, c.steps);
  ASSERT_TRUE(pipe.ok) << c.name;

  Rng rng(2024);
  const int kSubstepsPerSegment = 8;
  for (int trial = 0; trial < 40; ++trial) {
    Vec s(c.dim);
    for (std::size_t d = 0; d < c.dim; ++d) {
      s[d] = rng.uniform(s0[d].lo(), s0[d].hi());
    }
    // Walk the trajectory segment by segment; every substep state must lie
    // in the corresponding flowpipe segment.
    const double h_seg = c.period / c.steps;
    for (int seg = 0; seg < c.steps; ++seg) {
      for (int sub = 0; sub < kSubstepsPerSegment; ++sub) {
        ASSERT_TRUE(pipe.segments[seg].contains(s))
            << c.name << " seg " << seg << " sub " << sub;
        s = rk4_step(*f, s, Vec{c.u}, h_seg / kSubstepsPerSegment);
      }
    }
    ASSERT_TRUE(pipe.end.contains(s)) << c.name << " at end";
  }
}

// ---------------------------------------------------------------------------
// Affine-form steps (the zonotope loop domain's integrator): soundness
// against the concrete simulator, the never-worse-than-boxing floor, the
// correlation survival on rotations, and the declared-residual tightening.
// ---------------------------------------------------------------------------

/// Damped pendulum-like field with a declared linear part,
///   f(s, u) = A·s + B·u + (0, -(sin s0 - s0)),
/// used both with the implicit residual (interval evaluation of f - A·s -
/// B·u) and with the tight monotone-endpoint extension.
struct SoftPendulumField {
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = s[1] + 0.0 * s[0];
    out[1] = -sin(s[0]) - Interval{0.2} * s[1] + u[0];
  }
  void operator()(std::span<const double> s, std::span<const double> u,
                  std::span<double> out) const {
    out[0] = s[1];
    out[1] = -std::sin(s[0]) - 0.2 * s[1] + u[0];
  }
};

LinearPart soft_pendulum_linear(bool tight_residual) {
  LinearPart lp{{0.0, 1.0, -1.0, -0.2}, {0.0, 1.0}};
  if (tight_residual) {
    // sin x - x is non-increasing, so its exact range over [lo, hi] is the
    // hull of the outward-rounded endpoint evaluations.
    lp.residual = [](std::span<const Interval> s, std::span<Interval> out) {
      const Interval lo{s[0].lo()};
      const Interval hi{s[0].hi()};
      out[0] = Interval{};
      out[1] = -hull(sin(lo) - lo, sin(hi) - hi);
    };
  }
  return lp;
}

/// Pure rotation with an exact (zero) declared residual.
std::unique_ptr<Dynamics> rotation_dynamics() {
  LinearPart lp{{0.0, 1.0, -1.0, 0.0}, {0.0, 0.0}};
  lp.residual = [](std::span<const Interval>, std::span<Interval> out) {
    out[0] = Interval{};
    out[1] = Interval{};
  };
  return make_dynamics(2, 1, OscillatorField{}, lp);
}

TEST(AffineStep, EndBoxNeverWiderThanBoxedStep) {
  const auto f = make_dynamics(2, 1, SoftPendulumField{}, soft_pendulum_linear(true));
  const TaylorIntegrator integrator;
  Rng rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    const double c0 = rng.uniform(-0.6, 0.6);
    const double c1 = rng.uniform(-0.8, 0.8);
    const double w = rng.uniform(0.01, 0.3);
    const Box s0{Interval{c0 - w, c0 + w}, Interval{c1 - w, c1 + w}};
    const Vec u{rng.uniform(-1.0, 1.0)};
    // Mirror the integrator's own boxed companion step exactly (it runs on
    // the lifted set's concretization, which carries a few ulps of lift
    // slack over s0) so the floor guarantee is a deterministic containment.
    const AffineSet lifted = AffineSet::from_box(s0);
    const auto boxed = integrator.step(*f, lifted.concretize(), u, 0.05);
    const auto affine = integrator.step_affine(*f, lifted, u, 0.05);
    ASSERT_TRUE(boxed.has_value());
    ASSERT_TRUE(affine.has_value());
    EXPECT_TRUE(boxed->end.contains(affine->end_box)) << "trial " << trial;
    EXPECT_TRUE(affine->end.concretize().contains(affine->end_box));
  }
}

TEST(AffineStep, SoundAgainstConcreteTrajectories) {
  const auto f = make_dynamics(2, 1, SoftPendulumField{}, soft_pendulum_linear(true));
  const TaylorIntegrator integrator;
  const Box s0{Interval{0.2, 0.4}, Interval{-0.3, -0.1}};
  const Vec u{0.5};
  const double h = 0.08;
  const auto affine = integrator.step_affine(*f, AffineSet::from_box(s0), u, h);
  ASSERT_TRUE(affine.has_value());
  Rng rng(43);
  for (int trial = 0; trial < 40; ++trial) {
    Vec s{rng.uniform(s0[0].lo(), s0[0].hi()), rng.uniform(s0[1].lo(), s0[1].hi())};
    EXPECT_TRUE(affine->flow.contains(s));
    // Flow must cover the whole step, end_box the endpoint.
    for (int sub = 0; sub < 8; ++sub) {
      s = rk4_step(*f, s, u, h / 8.0);
      EXPECT_TRUE(affine->flow.contains(s)) << "mid-step escape, trial " << trial;
    }
    EXPECT_TRUE(affine->end_box.contains(s)) << "end escape, trial " << trial;
  }
}

TEST(AffineStep, DeclaredResidualIsTighterThanImplicit) {
  const Box s0{Interval{-0.5, 0.5}, Interval{-0.2, 0.2}};
  const Vec u{0.0};
  const TaylorIntegrator integrator;
  const auto f_implicit =
      make_dynamics(2, 1, SoftPendulumField{}, soft_pendulum_linear(false));
  const auto f_tight = make_dynamics(2, 1, SoftPendulumField{}, soft_pendulum_linear(true));
  const auto implicit = integrator.step_affine(*f_implicit, AffineSet::from_box(s0), u, 0.1);
  const auto tight = integrator.step_affine(*f_tight, AffineSet::from_box(s0), u, 0.1);
  ASSERT_TRUE(implicit.has_value());
  ASSERT_TRUE(tight.has_value());
  // The implicit interval recovery of sin x - x over a zero-centred box is
  // ~2|x|-wide from dependency loss; the monotone endpoint extension is
  // O(|x|^3). Velocity (the dimension the residual feeds) must come out
  // strictly tighter, and never looser anywhere.
  EXPECT_LT(tight->end_box[1].width(), implicit->end_box[1].width());
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_LE(tight->end_box[i].width(), implicit->end_box[i].width() + 1e-12);
  }
}

TEST(SimulateAffine, RotationStaysTightWhereBoxingWraps) {
  const auto f = rotation_dynamics();
  const TaylorIntegrator integrator;
  const Box s0{Interval{0.9, 1.1}, Interval{-0.1, 0.1}};
  const Vec u{0.0};
  const int steps = 10;
  const double period = 1.2;
  const Flowpipe boxed = simulate(*f, integrator, s0, u, period, steps);
  const AffineFlowpipe affine =
      simulate_affine(*f, integrator, AffineSet::from_box(s0), u, period, steps);
  ASSERT_TRUE(boxed.ok);
  ASSERT_TRUE(affine.ok);
  // Rotation is an isometry: the affine end set keeps widths ~0.2 while the
  // boxed pipeline compounds a wrapping factor every sub-step.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_LE(affine.end_box[i].width(), boxed.end[i].width());
    EXPECT_LT(affine.end_box[i].width(), 0.3);
  }
  EXPECT_GT(boxed.end[0].width(), affine.end_box[0].width() * 1.5);
  // And it is still sound: concrete endpoints stay inside.
  Rng rng(47);
  for (int trial = 0; trial < 30; ++trial) {
    Vec s{rng.uniform(s0[0].lo(), s0[0].hi()), rng.uniform(s0[1].lo(), s0[1].hi())};
    s = rk4_integrate(*f, s, u, period, 256);
    EXPECT_TRUE(affine.end_box.contains(s)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Systems, FlowpipeSoundness,
    ::testing::Values(
        SoundnessCase{"decay", 1, 1.0, 10, 0.0, 0.5, 1.5, 0, 0, 0},
        SoundnessCase{"decay_forced", 1, 2.0, 20, 0.7, -1.0, 1.0, 0, 0, 0},
        SoundnessCase{"oscillator", 2, 1.0, 10, 0.0, 0.9, 1.1, -0.1, 0.1, 1},
        SoundnessCase{"double_integrator", 2, 1.0, 5, -2.0, 0.0, 1.0, 1.0, 2.0, 2},
        SoundnessCase{"sine", 1, 1.0, 10, 0.3, 0.0, 0.5, 0, 0, 3},
        SoundnessCase{"sine_negative", 1, 0.5, 5, -0.5, -1.0, -0.5, 0, 0, 3}),
    [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace nncs
