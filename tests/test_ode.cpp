// Tests for the validated ODE machinery: Picard a-priori enclosures, the
// interval Taylor-series integrator, the Euler baseline, Algorithm 1
// (simulate) and the RK4 reference — including the soundness property that
// every concretely integrated trajectory stays inside the validated
// enclosures.

#include <gtest/gtest.h>

#include <cmath>

#include "ode/concrete_integrator.hpp"
#include "ode/dynamics.hpp"
#include "ode/validated_integrator.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

/// s' = -s (1-d decay): closed form s(t) = s0 e^{-t}.
struct DecayField {
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = -s[0] + 0.0 * u[0];
  }
};

/// Harmonic oscillator: (x, v)' = (v, -x); command unused.
struct OscillatorField {
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = s[1] + 0.0 * u[0];
    out[1] = -s[0] + 0.0 * u[0];
  }
};

/// Controlled integrator: (p, v)' = (v, u).
struct DoubleIntegratorField {
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = s[1] + 0.0 * s[0];
    out[1] = u[0] + 0.0 * s[1];
  }
};

/// Nonlinear: s' = sin(s) + u.
struct SineField {
  template <class S>
  void operator()(std::span<const S> s, std::span<const S> u, std::span<S> out) const {
    out[0] = sin(s[0]) + u[0];
  }
};

TEST(Dynamics, ModelReportsDimensions) {
  const auto f = make_dynamics(2, 1, OscillatorField{});
  EXPECT_EQ(f->state_dim(), 2u);
  EXPECT_EQ(f->command_dim(), 1u);
}

TEST(Dynamics, EvalOnBoxMatchesIntervalEvaluation) {
  const auto f = make_dynamics(2, 1, DoubleIntegratorField{});
  const Box img = eval_on_box(*f, Box{Interval{0.0, 1.0}, Interval{2.0, 3.0}}, Vec{5.0});
  EXPECT_TRUE(img[0].contains(Interval{2.0, 3.0}));
  EXPECT_TRUE(img[1].contains(5.0));
}

TEST(Picard, FindsEnclosureForDecay) {
  const auto f = make_dynamics(1, 1, DecayField{});
  const auto b = picard_enclosure(*f, Box{Interval{1.0, 2.0}}, Vec{0.0}, 0.1);
  ASSERT_TRUE(b.has_value());
  // True solutions stay in [e^{-0.1}, 2].
  EXPECT_TRUE((*b)[0].contains(Interval{std::exp(-0.1), 2.0}));
}

TEST(Picard, RejectsNonPositiveStep) {
  const auto f = make_dynamics(1, 1, DecayField{});
  EXPECT_THROW(picard_enclosure(*f, Box{Interval{1.0}}, Vec{0.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(picard_enclosure(*f, Box{Interval{1.0}}, Vec{0.0}, -1.0), std::invalid_argument);
}

TEST(TaylorIntegrator, RejectsOrderZero) {
  TaylorIntegrator::Config config;
  config.order = 0;
  EXPECT_THROW(TaylorIntegrator{config}, std::invalid_argument);
}

TEST(TaylorIntegrator, DecayStepEnclosesClosedForm) {
  const auto f = make_dynamics(1, 1, DecayField{});
  const TaylorIntegrator integrator;
  const auto step = integrator.step(*f, Box{Interval{1.0, 2.0}}, Vec{0.0}, 0.25);
  ASSERT_TRUE(step.has_value());
  const double lo = std::exp(-0.25) * 1.0;
  const double hi = std::exp(-0.25) * 2.0;
  EXPECT_TRUE(step->end[0].contains(lo));
  EXPECT_TRUE(step->end[0].contains(hi));
  // Box enclosures cannot contract widths (the dependency problem); the
  // natural bound is one factor of e^{L·h} on the initial width.
  EXPECT_LT(step->end[0].width(), 1.0 * std::exp(0.25) * 1.05);
  // Flow contains both endpoints in time.
  EXPECT_TRUE(step->flow[0].contains(2.0));
  EXPECT_TRUE(step->flow[0].contains(lo));
  // End is inside flow.
  EXPECT_TRUE(step->flow.contains(step->end));
}

TEST(TaylorIntegrator, OscillatorQuarterTurn) {
  const auto f = make_dynamics(2, 1, OscillatorField{});
  const TaylorIntegrator integrator(TaylorIntegrator::Config{6, {}});
  Box current{Interval{1.0, 1.0}, Interval{0.0, 0.0}};
  // Integrate to t = pi/2 in 16 steps: (1,0) -> (0,-1).
  const double h = std::numbers::pi / 2.0 / 16.0;
  for (int i = 0; i < 16; ++i) {
    const auto step = integrator.step(*f, current, Vec{0.0}, h);
    ASSERT_TRUE(step.has_value());
    current = step->end;
  }
  EXPECT_TRUE(current[0].contains(0.0));
  EXPECT_TRUE(current[1].contains(-1.0));
  EXPECT_LT(current[0].width(), 1e-6);
}

TEST(TaylorIntegrator, HigherOrderIsTighter) {
  const auto f = make_dynamics(1, 1, SineField{});
  const Box s0{Interval{0.4, 0.5}};
  const TaylorIntegrator low(TaylorIntegrator::Config{1, {}});
  const TaylorIntegrator high(TaylorIntegrator::Config{5, {}});
  const auto step_low = low.step(*f, s0, Vec{0.1}, 0.2);
  const auto step_high = high.step(*f, s0, Vec{0.1}, 0.2);
  ASSERT_TRUE(step_low.has_value());
  ASSERT_TRUE(step_high.has_value());
  EXPECT_LE(step_high->end[0].width(), step_low->end[0].width());
}

TEST(EulerIntegrator, SoundButLooserThanTaylor) {
  const auto f = make_dynamics(1, 1, DecayField{});
  const EulerIntegrator euler;
  const TaylorIntegrator taylor;
  const Box s0{Interval{1.0, 1.1}};
  const auto se = euler.step(*f, s0, Vec{0.0}, 0.1);
  const auto st = taylor.step(*f, s0, Vec{0.0}, 0.1);
  ASSERT_TRUE(se.has_value());
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(se->end[0].contains(std::exp(-0.1)));
  EXPECT_GE(se->end[0].width(), st->end[0].width());
}

TEST(Simulate, FlowpipeHasOneSegmentPerStep) {
  const auto f = make_dynamics(2, 1, DoubleIntegratorField{});
  const TaylorIntegrator integrator;
  const Flowpipe pipe =
      simulate(*f, integrator, Box{Interval{0.0, 1.0}, Interval{1.0, 1.0}}, Vec{0.5}, 1.0, 4);
  EXPECT_TRUE(pipe.ok);
  EXPECT_EQ(pipe.segments.size(), 4u);
  // p(1) = p0 + v0 + u/2 in [1.25, 2.25]; v(1) = 1.5.
  EXPECT_TRUE(pipe.end[0].contains(Interval{1.25, 2.25}));
  EXPECT_TRUE(pipe.end[1].contains(1.5));
  // hull covers start and end
  const Box h = pipe.hull_box();
  EXPECT_TRUE(h[0].contains(0.0));
  EXPECT_TRUE(h[0].contains(2.25));
}

TEST(Simulate, InvalidArgumentsThrow) {
  const auto f = make_dynamics(1, 1, DecayField{});
  const TaylorIntegrator integrator;
  EXPECT_THROW(simulate(*f, integrator, Box{Interval{1.0}}, Vec{0.0}, 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(simulate(*f, integrator, Box{Interval{1.0}}, Vec{0.0}, -1.0, 4),
               std::invalid_argument);
}

TEST(Rk4, MatchesClosedFormDecay) {
  const auto f = make_dynamics(1, 1, DecayField{});
  const Vec s1 = rk4_integrate(*f, Vec{1.0}, Vec{0.0}, 1.0, 100);
  EXPECT_NEAR(s1[0], std::exp(-1.0), 1e-8);
}

TEST(Rk4, TrajectoryHasExpectedShape) {
  const auto f = make_dynamics(2, 1, OscillatorField{});
  const auto traj = rk4_trajectory(*f, Vec{1.0, 0.0}, Vec{0.0}, 2.0 * std::numbers::pi, 200);
  EXPECT_EQ(traj.size(), 201u);
  EXPECT_NEAR(traj.back()[0], 1.0, 1e-6);  // full period returns to start
  EXPECT_NEAR(traj.back()[1], 0.0, 1e-6);
  EXPECT_THROW(rk4_trajectory(*f, Vec{1.0, 0.0}, Vec{0.0}, 1.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Soundness property: RK4 trajectories from sampled initial conditions stay
// inside the validated flowpipe, for several systems and step counts.
// ---------------------------------------------------------------------------

struct SoundnessCase {
  const char* name;
  std::size_t dim;
  double period;
  int steps;
  double u;
  double lo0, hi0, lo1, hi1;  // initial ranges (dim 2 uses both)
  int field;                  // 0=decay 1=osc 2=dblint 3=sine
};

class FlowpipeSoundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(FlowpipeSoundness, ConcreteTrajectoriesStayInside) {
  const auto& c = GetParam();
  std::unique_ptr<Dynamics> f;
  switch (c.field) {
    case 0:
      f = make_dynamics(1, 1, DecayField{});
      break;
    case 1:
      f = make_dynamics(2, 1, OscillatorField{});
      break;
    case 2:
      f = make_dynamics(2, 1, DoubleIntegratorField{});
      break;
    default:
      f = make_dynamics(1, 1, SineField{});
      break;
  }
  Box s0 = c.dim == 1 ? Box{Interval{c.lo0, c.hi0}}
                      : Box{Interval{c.lo0, c.hi0}, Interval{c.lo1, c.hi1}};
  const TaylorIntegrator integrator;
  const Flowpipe pipe = simulate(*f, integrator, s0, Vec{c.u}, c.period, c.steps);
  ASSERT_TRUE(pipe.ok) << c.name;

  Rng rng(2024);
  const int kSubstepsPerSegment = 8;
  for (int trial = 0; trial < 40; ++trial) {
    Vec s(c.dim);
    for (std::size_t d = 0; d < c.dim; ++d) {
      s[d] = rng.uniform(s0[d].lo(), s0[d].hi());
    }
    // Walk the trajectory segment by segment; every substep state must lie
    // in the corresponding flowpipe segment.
    const double h_seg = c.period / c.steps;
    for (int seg = 0; seg < c.steps; ++seg) {
      for (int sub = 0; sub < kSubstepsPerSegment; ++sub) {
        ASSERT_TRUE(pipe.segments[seg].contains(s))
            << c.name << " seg " << seg << " sub " << sub;
        s = rk4_step(*f, s, Vec{c.u}, h_seg / kSubstepsPerSegment);
      }
    }
    ASSERT_TRUE(pipe.end.contains(s)) << c.name << " at end";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Systems, FlowpipeSoundness,
    ::testing::Values(
        SoundnessCase{"decay", 1, 1.0, 10, 0.0, 0.5, 1.5, 0, 0, 0},
        SoundnessCase{"decay_forced", 1, 2.0, 20, 0.7, -1.0, 1.0, 0, 0, 0},
        SoundnessCase{"oscillator", 2, 1.0, 10, 0.0, 0.9, 1.1, -0.1, 0.1, 1},
        SoundnessCase{"double_integrator", 2, 1.0, 5, -2.0, 0.0, 1.0, 1.0, 2.0, 2},
        SoundnessCase{"sine", 1, 1.0, 10, 0.3, 0.0, 0.5, 0, 0, 3},
        SoundnessCase{"sine_negative", 1, 0.5, 5, -0.5, -1.0, -0.5, 0, 0, 3}),
    [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace nncs
