// Tests for Algorithm 3 (the closed-loop reachability analysis): error
// detection, termination, horizon semantics, branching, Γ enforcement, the
// unsound discrete-instant baseline, and the sampled-set soundness property
// against the concrete simulator.

#include <gtest/gtest.h>

#include <numbers>

#include "closed_loop_fixtures.hpp"
#include "core/simulate.hpp"
#include "ode/concrete_integrator.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

using testing_fixtures::braking_plant;
using testing_fixtures::oscillator_plant;
using testing_fixtures::threshold_controller;

const TaylorIntegrator kIntegrator;

ReachConfig base_config(int steps) {
  ReachConfig config;
  config.control_steps = steps;
  config.integration_steps = 4;
  config.gamma = 8;
  config.integrator = &kIntegrator;
  return config;
}

TEST(Reachability, DetectsErrorOnCollisionCourse) {
  const auto plant = braking_plant();
  const auto ctrl = threshold_controller(-1e9, -8.0);  // never brakes
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, 0.0}}});
  const EmptyRegion target;
  // p0 in [5, 6], v = 2: hits p = 0 during step 2 (t in [2, 3]).
  const SymbolicSet initial{{Box{Interval{5.0, 6.0}, Interval{2.0, 2.0}}, 0}};
  const auto result = reach_analyze(system, initial, error, target, base_config(10));
  EXPECT_EQ(result.outcome, ReachOutcome::kErrorReachable);
  EXPECT_EQ(result.offending_step, 2);
  ASSERT_TRUE(result.offending.has_value());
  EXPECT_EQ(result.offending->command, 0u);
}

TEST(Reachability, ProvesSafeWithTermination) {
  const auto plant = braking_plant();
  const auto ctrl = threshold_controller(-1e9, -8.0);  // always coast
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, 0.0}}});
  // v = -1: the vehicle moves away; terminate once p >= 10.
  const BoxRegion target({{0, Interval{10.0, 1e9}}});
  const SymbolicSet initial{{Box{Interval{5.0, 6.0}, Interval{-1.0, -1.0}}, 0}};
  const auto result = reach_analyze(system, initial, error, target, base_config(10));
  EXPECT_EQ(result.outcome, ReachOutcome::kProvedSafe);
  // Termination needs p in [10, ...]: from [5,6] at 1/s that is 5 steps.
  EXPECT_LE(result.stats.steps_executed, 6);
}

TEST(Reachability, HorizonExhaustedWithoutTarget) {
  const auto plant = braking_plant();
  const auto ctrl = threshold_controller(-1e9, -8.0);
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, 0.0}}});
  const EmptyRegion target;
  const SymbolicSet initial{{Box{Interval{100.0, 101.0}, Interval{1.0, 1.0}}, 0}};
  const auto result = reach_analyze(system, initial, error, target, base_config(5));
  EXPECT_EQ(result.outcome, ReachOutcome::kHorizonExhausted);
  EXPECT_EQ(result.stats.steps_executed, 5);
  // Sampled sets recorded for steps 0..5.
  EXPECT_EQ(result.sampled_sets.size(), 6u);
}

TEST(Reachability, BranchesOnDecisionBoundary) {
  const auto plant = braking_plant();
  const auto ctrl = threshold_controller(50.0, -2.0);
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, 0.0}}});
  const EmptyRegion target;
  // The box straddles the threshold p = 50 -> both commands reachable.
  const SymbolicSet initial{{Box{Interval{49.0, 51.0}, Interval{0.0, 0.0}}, 0}};
  const auto result = reach_analyze(system, initial, error, target, base_config(2));
  ASSERT_GE(result.sampled_sets.size(), 2u);
  EXPECT_EQ(result.sampled_sets[1].size(), 2u);  // branched into coast + brake
}

TEST(Reachability, GammaBoundsSampledSets) {
  const auto plant = braking_plant();
  const auto ctrl = threshold_controller(50.0, -2.0);
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, -1000.0}}});
  const EmptyRegion target;
  ReachConfig config = base_config(6);
  config.gamma = 2;
  // Many initial states near the boundary create joins.
  SymbolicSet initial;
  for (int i = 0; i < 6; ++i) {
    initial.push_back({Box{Interval{48.0 + i, 48.5 + i}, Interval{0.0, 0.1}}, 0});
  }
  const auto result = reach_analyze(system, initial, error, target, config);
  EXPECT_GT(result.stats.joins, 0u);
  // Resize runs at the top of each loop iteration, so every *propagated*
  // set respects Γ; the final set (recorded after the last step, before any
  // further resize — exactly as in Algorithm 3) may exceed it.
  for (std::size_t j = 0; j + 1 < result.sampled_sets.size(); ++j) {
    EXPECT_LE(result.sampled_sets[j].size(), 2u);
  }
}

TEST(Reachability, RecordsFlowpipesWhenAsked) {
  const auto plant = braking_plant();
  const auto ctrl = threshold_controller(-1e9, -8.0);
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, -1000.0}}});
  const EmptyRegion target;
  ReachConfig config = base_config(3);
  config.record_flowpipes = true;
  const SymbolicSet initial{{Box{Interval{10.0, 11.0}, Interval{1.0, 1.0}}, 0}};
  const auto result = reach_analyze(system, initial, error, target, config);
  ASSERT_EQ(result.flowpipes.size(), 3u);
  ASSERT_EQ(result.flowpipes[0].size(), 1u);
  EXPECT_EQ(result.flowpipes[0][0].segments.size(), 4u);
}

TEST(Reachability, DiscreteInstantBaselineMissesIntraPeriodViolation) {
  // Oscillator with a full revolution per control period: at every sampling
  // instant the state is back at (1, 0), but mid-period it passes through
  // p = -1. The sound analysis flags the error; the [7]-style baseline,
  // which checks only t = jT, wrongly reports no error.
  const double omega = 2.0 * std::numbers::pi;
  const auto plant = oscillator_plant(omega);
  const auto ctrl = threshold_controller(-1e9, 0.0);
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, -0.5}}});
  const EmptyRegion target;

  ReachConfig sound = base_config(2);
  sound.integration_steps = 32;
  // A full revolution per period needs a high-order integrator to keep the
  // sampled-instant enclosures tight (local error (ω·h)^{K+1} is amplified
  // e^{ωT} by the wrapping effect).
  const TaylorIntegrator::Config high_order{8, {}};
  const TaylorIntegrator integrator(high_order);
  sound.integrator = &integrator;
  const SymbolicSet initial{{Box{Interval{1.0, 1.0}, Interval{0.0, 0.0}}, 0}};
  const auto sound_result = reach_analyze(system, initial, error, target, sound);
  EXPECT_EQ(sound_result.outcome, ReachOutcome::kErrorReachable);

  ReachConfig unsound = sound;
  unsound.check_intermediate = false;
  const auto unsound_result = reach_analyze(system, initial, error, target, unsound);
  EXPECT_EQ(unsound_result.outcome, ReachOutcome::kHorizonExhausted);
}

TEST(Reachability, DiscreteInstantBaselineStillSeesSampledViolations) {
  const auto plant = braking_plant();
  const auto ctrl = threshold_controller(-1e9, -8.0);
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, 0.0}}});
  const EmptyRegion target;
  ReachConfig config = base_config(10);
  config.check_intermediate = false;
  const SymbolicSet initial{{Box{Interval{5.0, 6.0}, Interval{2.0, 2.0}}, 0}};
  const auto result = reach_analyze(system, initial, error, target, config);
  EXPECT_EQ(result.outcome, ReachOutcome::kErrorReachable);
}

TEST(Reachability, ValidatesConfiguration) {
  const auto plant = braking_plant();
  const auto ctrl = threshold_controller(0.0, -8.0);
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, 0.0}}});
  const EmptyRegion target;
  const SymbolicSet initial{{Box{Interval{5.0, 6.0}, Interval{2.0, 2.0}}, 0}};

  ReachConfig config;  // integrator not set
  config.control_steps = 5;
  EXPECT_THROW(reach_analyze(system, initial, error, target, config), std::invalid_argument);

  config = base_config(0);
  EXPECT_THROW(reach_analyze(system, initial, error, target, config), std::invalid_argument);

  EXPECT_THROW(reach_analyze(system, SymbolicSet{}, error, target, base_config(5)),
               std::invalid_argument);

  // wrong box dimension
  EXPECT_THROW(reach_analyze(system, SymbolicSet{{Box{Interval{0.0, 1.0}}, 0}}, error, target,
                             base_config(5)),
               std::invalid_argument);
  // bad command index
  EXPECT_THROW(
      reach_analyze(system, SymbolicSet{{Box(2, Interval{0.0, 1.0}), 9}}, error, target,
                    base_config(5)),
      std::invalid_argument);

  const ClosedLoop broken{nullptr, ctrl.get(), 1.0};
  EXPECT_THROW(reach_analyze(broken, initial, error, target, base_config(5)),
               std::invalid_argument);
}

TEST(Reachability, OutcomeToString) {
  EXPECT_STREQ(to_string(ReachOutcome::kProvedSafe), "proved-safe");
  EXPECT_STREQ(to_string(ReachOutcome::kErrorReachable), "error-reachable");
  EXPECT_STREQ(to_string(ReachOutcome::kHorizonExhausted), "horizon-exhausted");
  EXPECT_STREQ(to_string(ReachOutcome::kEnclosureFailure), "enclosure-failure");
}

// ---------------------------------------------------------------------------
// Soundness property (the essence of Theorem 1): every concrete closed-loop
// trajectory sampled from the initial cell is covered, at each sampling
// instant, by some symbolic state of R̃_j with the matching command.
// ---------------------------------------------------------------------------

class ReachabilitySoundness : public ::testing::TestWithParam<NnDomain> {};

TEST_P(ReachabilitySoundness, SampledTrajectoriesCoveredAtSampleInstants) {
  const auto plant = braking_plant();
  const auto ctrl = threshold_controller(50.0, -2.0, GetParam());
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, -1e8}}});  // effectively no error
  const EmptyRegion target;

  const Box cell{Interval{48.0, 52.0}, Interval{-0.5, 0.5}};
  const int q = 8;
  const auto result =
      reach_analyze(system, SymbolicSet{{cell, 0}}, error, target, base_config(q));
  ASSERT_EQ(result.outcome, ReachOutcome::kHorizonExhausted);
  ASSERT_EQ(result.sampled_sets.size(), static_cast<std::size_t>(q) + 1);

  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    Vec s{rng.uniform(cell[0].lo(), cell[0].hi()), rng.uniform(cell[1].lo(), cell[1].hi())};
    std::size_t cmd = 0;
    for (int j = 0; j <= q; ++j) {
      bool covered = false;
      for (const auto& sym : result.sampled_sets[j]) {
        if (sym.command == cmd && sym.box().contains(s)) {
          covered = true;
          break;
        }
      }
      ASSERT_TRUE(covered) << "trajectory escaped R_" << j;
      if (j == q) {
        break;
      }
      const std::size_t next_cmd = ctrl->step(s, cmd);
      s = rk4_integrate(*plant, s, ctrl->commands()[cmd], 1.0, 64);
      cmd = next_cmd;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, ReachabilitySoundness,
                         ::testing::Values(NnDomain::kInterval, NnDomain::kSymbolic),
                         [](const auto& info) {
                           return info.param == NnDomain::kInterval ? "interval" : "symbolic";
                         });

// ---------------------------------------------------------------------------
// Loop domain (box vs zonotope): the same soundness law must hold when the
// relational abstraction is threaded through the loop, and on rotational
// dynamics the zonotope path must actually be tighter than boxing.
// ---------------------------------------------------------------------------

/// Harmonic oscillator with its exact linear part declared (zero residual),
/// so the affine integrator path engages instead of the boxed fallback.
std::unique_ptr<Dynamics> rotation_plant() {
  LinearPart lp{{0.0, 1.0, -1.0, 0.0}, {0.0, 0.0}};
  lp.residual = [](std::span<const Interval>, std::span<Interval> out) {
    out[0] = Interval{};
    out[1] = Interval{};
  };
  return make_dynamics(2, 1, testing_fixtures::OscField{1.0}, lp);
}

TEST(ReachabilityLoopDomain, ZonotopeSoundAtSampleInstants) {
  const auto plant = rotation_plant();
  const auto ctrl = threshold_controller(-1e9, 0.0);  // always coast (u = 0)
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, -1e8}}});  // effectively no error
  const EmptyRegion target;
  const Box cell{Interval{0.9, 1.1}, Interval{-0.1, 0.1}};
  const int q = 6;
  ReachConfig config = base_config(q);
  config.domain = LoopDomain::kZonotope;
  const auto result =
      reach_analyze(system, SymbolicSet{{cell, 0}}, error, target, config);
  ASSERT_EQ(result.outcome, ReachOutcome::kHorizonExhausted);
  ASSERT_EQ(result.sampled_sets.size(), static_cast<std::size_t>(q) + 1);

  Rng rng(113);
  for (int trial = 0; trial < 40; ++trial) {
    Vec s{rng.uniform(cell[0].lo(), cell[0].hi()), rng.uniform(cell[1].lo(), cell[1].hi())};
    std::size_t cmd = 0;
    for (int j = 0; j <= q; ++j) {
      bool covered = false;
      for (const auto& sym : result.sampled_sets[j]) {
        if (sym.command == cmd && sym.box().contains(s)) {
          // A carried relational refinement must agree with its own box.
          if (sym.abstract.has_relational()) {
            EXPECT_TRUE(sym.box().contains(sym.abstract.relational()->concretize()));
          }
          covered = true;
          break;
        }
      }
      ASSERT_TRUE(covered) << "trajectory escaped R_" << j;
      if (j == q) {
        break;
      }
      const std::size_t next_cmd = ctrl->step(s, cmd);
      s = rk4_integrate(*plant, s, ctrl->commands()[cmd], 1.0, 64);
      cmd = next_cmd;
    }
  }
}

TEST(ReachabilityLoopDomain, ZonotopeTighterThanBoxOnRotation) {
  const auto plant = rotation_plant();
  const auto ctrl = threshold_controller(-1e9, 0.0);
  const ClosedLoop system{plant.get(), ctrl.get(), 1.0};
  const BoxRegion error({{0, Interval{-1e9, -1e8}}});
  const EmptyRegion target;
  const Box cell{Interval{0.9, 1.1}, Interval{-0.1, 0.1}};
  const int q = 6;

  ReachConfig box_config = base_config(q);
  box_config.domain = LoopDomain::kBox;
  ReachConfig zono_config = base_config(q);
  zono_config.domain = LoopDomain::kZonotope;
  const auto boxed = reach_analyze(system, SymbolicSet{{cell, 0}}, error, target, box_config);
  const auto zono = reach_analyze(system, SymbolicSet{{cell, 0}}, error, target, zono_config);
  ASSERT_EQ(boxed.outcome, ReachOutcome::kHorizonExhausted);
  ASSERT_EQ(zono.outcome, ReachOutcome::kHorizonExhausted);

  // Compare the final sampled sets' hulls: the oscillator only rotates, so
  // the zonotope stays at the initial widths (~0.2) while the boxed loop
  // wraps at every sub-step and blows up by a large factor over 6 periods.
  const auto hull_width = [](const SymbolicSet& set, std::size_t dim) {
    Interval hull = set.front().box()[dim];
    for (const auto& sym : set) {
      hull = nncs::hull(hull, sym.box()[dim]);
    }
    return hull.width();
  };
  for (std::size_t dim = 0; dim < 2; ++dim) {
    const double bw = hull_width(boxed.sampled_sets.back(), dim);
    const double zw = hull_width(zono.sampled_sets.back(), dim);
    EXPECT_LT(zw, 0.3) << "dim " << dim;
    EXPECT_GT(bw, 2.0 * zw) << "dim " << dim;
  }
}


}  // namespace
}  // namespace nncs
