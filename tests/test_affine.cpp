// Tests for the affine-arithmetic scalar: exact cancellation of shared
// noise symbols, sound ranges, multiplication error bounding, the ReLU
// relaxation, and random containment properties via noise valuations.

#include <gtest/gtest.h>

#include <cmath>

#include "interval/affine.hpp"
#include "util/rng.hpp"

namespace nncs {
namespace {

TEST(Affine, ConstantHasNoDeviation) {
  const Affine c = 3.5;
  EXPECT_DOUBLE_EQ(c.center(), 3.5);
  EXPECT_LT(c.radius(), 1e-12);
  EXPECT_TRUE(c.range().contains(3.5));
}

TEST(Affine, VariableRangeMatchesBounds) {
  NoiseSource src;
  const Affine x = Affine::variable(1.0, 3.0, src);
  EXPECT_DOUBLE_EQ(x.center(), 2.0);
  const Interval r = x.range();
  EXPECT_LE(r.lo(), 1.0);
  EXPECT_GE(r.hi(), 3.0);
  EXPECT_LT(r.width(), 2.0 + 1e-9);
  EXPECT_THROW(Affine::variable(3.0, 1.0, src), std::invalid_argument);
}

TEST(Affine, SharedSymbolsCancelExactly) {
  // x - x must be (nearly) zero — the defining advantage over intervals,
  // where [1,3] - [1,3] = [-2,2].
  NoiseSource src;
  const Affine x = Affine::variable(1.0, 3.0, src);
  const Affine d = x - x;
  EXPECT_LT(d.radius(), 1e-9);
  EXPECT_TRUE(d.range().contains(0.0));
}

TEST(Affine, IndependentSymbolsDoNotCancel) {
  NoiseSource src;
  const Affine x = Affine::variable(1.0, 3.0, src);
  const Affine y = Affine::variable(1.0, 3.0, src);
  const Interval d = (x - y).range();
  EXPECT_LE(d.lo(), -2.0 + 1e-9);
  EXPECT_GE(d.hi(), 2.0 - 1e-9);
}

TEST(Affine, AdditionIsExactOnSymbols) {
  NoiseSource src;
  const Affine x = Affine::variable(0.0, 2.0, src);
  const Affine s = x + x + 1.0;
  // 2x + 1 over [0,2]: range [1, 5].
  EXPECT_LE(s.range().lo(), 1.0 + 1e-9);
  EXPECT_GE(s.range().hi(), 5.0 - 1e-9);
  EXPECT_LT(s.range().width(), 4.0 + 1e-6);
}

TEST(Affine, ScalingIsExact) {
  NoiseSource src;
  const Affine x = Affine::variable(-1.0, 1.0, src);
  const Affine y = -3.0 * x;
  EXPECT_LE(y.range().lo(), -3.0 + 1e-9);
  EXPECT_GE(y.range().hi(), 3.0 - 1e-9);
  EXPECT_LT(y.range().width(), 6.0 + 1e-6);
}

TEST(Affine, MultiplicationBoundsQuadraticTerm) {
  NoiseSource src;
  const Affine x = Affine::variable(-1.0, 1.0, src);
  const Affine sq = x * x;
  // True range of x^2 is [0,1]; zonotope multiplication yields center 0
  // radius <= 1, i.e. [-1, 1] — sound, though not tight.
  EXPECT_LE(sq.range().lo(), 0.0);
  EXPECT_GE(sq.range().hi(), 1.0 - 1e-9);
  for (double v = -1.0; v <= 1.0; v += 0.1) {
    EXPECT_TRUE(sq.range().contains(v * v));
  }
}

TEST(Affine, ReluStableCases) {
  NoiseSource src;
  const Affine pos = Affine::variable(1.0, 2.0, src);
  const Affine keep = pos.relu(src);
  EXPECT_NEAR(keep.center(), pos.center(), 1e-12);
  const Affine neg = Affine::variable(-2.0, -1.0, src);
  const Affine zero = neg.relu(src);
  EXPECT_DOUBLE_EQ(zero.center(), 0.0);
  EXPECT_LT(zero.radius(), 1e-12);
}

TEST(Affine, ReluUnstableIsSoundAndAddsOneSymbol) {
  NoiseSource src;
  const Affine x = Affine::variable(-1.0, 1.0, src);
  const std::uint32_t before = src.count();
  const Affine y = x.relu(src);
  EXPECT_EQ(src.count(), before + 1);
  for (double v = -1.0; v <= 1.0; v += 0.05) {
    // For each input value there must exist a valuation of the fresh
    // symbol making y = relu(v): check via the range of y restricted to
    // epsilon_0 = v (the input symbol) — conservatively, just check the
    // overall range covers relu(v).
    EXPECT_TRUE(y.range().contains(std::max(0.0, v)));
  }
  // The relaxation must not report negative lower bounds beyond -mu/2 slack.
  EXPECT_GE(y.range().lo(), -0.51);
}

TEST(Affine, EvaluateAtNoiseValuation) {
  NoiseSource src;
  const Affine x = Affine::variable(0.0, 2.0, src);  // symbol 0, center 1, rad 1
  const Affine expr = 2.0 * x + 1.0;
  EXPECT_TRUE(expr.evaluate({0.0}).contains(3.0));
  EXPECT_TRUE(expr.evaluate({1.0}).contains(5.0));
  EXPECT_TRUE(expr.evaluate({-1.0}).contains(1.0));
}

// Property: random affine expressions over shared variables enclose the
// concrete evaluation at sampled noise valuations.
TEST(AffineProperty, RandomExpressionContainment) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    NoiseSource src;
    const double lo0 = rng.uniform(-3.0, 0.0);
    const double hi0 = lo0 + rng.uniform(0.1, 2.0);
    const double lo1 = rng.uniform(-1.0, 2.0);
    const double hi1 = lo1 + rng.uniform(0.1, 2.0);
    const Affine x = Affine::variable(lo0, hi0, src);
    const Affine y = Affine::variable(lo1, hi1, src);
    const Affine expr = (x + y) * (x - 2.0 * y) + 0.5 * x - 1.0;
    for (int s = 0; s < 20; ++s) {
      const double e0 = rng.uniform(-1.0, 1.0);
      const double e1 = rng.uniform(-1.0, 1.0);
      const double vx = x.center() + (hi0 - lo0) / 2.0 * e0;
      const double vy = y.center() + (hi1 - lo1) / 2.0 * e1;
      const double truth = (vx + vy) * (vx - 2.0 * vy) + 0.5 * vx - 1.0;
      ASSERT_TRUE(expr.range().contains(truth))
          << truth << " not in " << expr.range().str();
    }
  }
}

// Property: affine ranges are never wider than interval arithmetic on
// expressions dominated by linear correlation.
TEST(AffineProperty, TighterThanIntervalsOnCorrelatedSums) {
  Rng rng(778);
  for (int trial = 0; trial < 100; ++trial) {
    NoiseSource src;
    const double lo = rng.uniform(-2.0, 0.0);
    const double hi = lo + rng.uniform(0.5, 2.0);
    const Affine x = Affine::variable(lo, hi, src);
    // 5x - 4x - x = 0 exactly in affine arithmetic.
    const Affine zero = 5.0 * x - 4.0 * x - x;
    EXPECT_LT(zero.radius(), 1e-9);
    const Interval ix(lo, hi);
    const Interval interval_version = Interval{5.0} * ix - Interval{4.0} * ix - ix;
    EXPECT_GT(interval_version.width(), 1.0);  // intervals blow up
  }
}

}  // namespace
}  // namespace nncs
